package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"blastlan/internal/wire"
)

// The registry's iteration order is deterministic (sorted), repeatable, and
// contains exactly the built-in policies.
func TestControllerRegistryDeterministicOrder(t *testing.T) {
	want := []string{ControllerAIMD, ControllerAutotune, ControllerBBR}
	first := ControllerNames()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("ControllerNames() = %v, want %v", first, want)
	}
	for i := 0; i < 10; i++ {
		if got := ControllerNames(); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d: ControllerNames() = %v, want stable %v", i, got, first)
		}
	}
}

// An unknown controller name is rejected by ValidateConfig with an error
// that names the offender and the registered alternatives.
func TestUnknownControllerRejected(t *testing.T) {
	err := ValidateConfig(Config{Bytes: 64 << 10, Controller: "warp"})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown controller: err = %v, want ErrBadConfig", err)
	}
	if !strings.Contains(err.Error(), `"warp"`) || !strings.Contains(err.Error(), ControllerBBR) {
		t.Errorf("error should name the offender and the registered policies: %v", err)
	}
	for _, name := range ControllerNames() {
		if err := ValidateConfig(Config{Bytes: 64 << 10, Controller: name}); err != nil {
			t.Errorf("registered controller %q rejected: %v", name, err)
		}
	}
}

// The deprecated Adaptive bool maps to the AIMD policy, and the policy
// selector survives the REQ handshake round trip: name → wire id → name.
func TestControllerPolicyHandshakeRoundTrip(t *testing.T) {
	legacy := Config{Bytes: 1 << 20, Adaptive: true}
	if r := ReqOf(legacy, false); r.Adaptive != ControllerID(ControllerAIMD) {
		t.Errorf("Adaptive=true encoded policy %d, want the aimd id %d", r.Adaptive, ControllerID(ControllerAIMD))
	}
	for _, name := range ControllerNames() {
		r := ReqOf(Config{Bytes: 1 << 20, Controller: name}, false)
		if r.Adaptive == 0 {
			t.Fatalf("policy %q encoded as 0", name)
		}
		dec, err := wire.DecodeReq(wire.EncodeReq(r))
		if err != nil {
			t.Fatal(err)
		}
		got := ConfigOf(7, dec)
		if got.Controller != name || !got.Adaptive {
			t.Errorf("policy %q round-tripped as Controller=%q Adaptive=%v", name, got.Controller, got.Adaptive)
		}
	}
	// A policy id this build does not know degrades to aimd, never a refusal.
	if got := ConfigOf(7, wire.Req{Bytes: 1 << 20, Adaptive: 29}); got.Controller != ControllerAIMD {
		t.Errorf("unknown policy id resolved to %q, want aimd", got.Controller)
	}
	if got := ConfigOf(7, wire.Req{Bytes: 1 << 20}); got.Controller != "" || got.Adaptive {
		t.Errorf("policy 0 resolved to %q/%v, want fixed schedule", got.Controller, got.Adaptive)
	}
}

// Every built-in policy's Stats() round-trips through SendResult.Controller:
// a controlled loopback transfer surfaces the trajectory with the policy
// name attached.
func TestControllerStatsRoundTripThroughSendResult(t *testing.T) {
	for _, name := range ControllerNames() {
		t.Run(name, func(t *testing.T) {
			a, b := newLoopEnvPair()
			payload := SeededPayload(3, 120_000, 1000)
			cfg := Config{
				TransferID:     61,
				Bytes:          len(payload),
				ChunkSize:      1000,
				Controller:     name,
				Protocol:       Blast,
				Strategy:       GoBackN,
				RetransTimeout: 100 * time.Millisecond,
				MaxAttempts:    20,
				Payload:        payload,
			}
			done := make(chan SendResult, 1)
			errs := make(chan error, 1)
			go func() {
				res, err := RunSender(a, cfg)
				done <- res
				errs <- err
			}()
			rcfg := cfg
			rcfg.Payload = nil
			if _, err := RunReceiver(b, rcfg); err != nil {
				t.Fatalf("receiver: %v", err)
			}
			res, err := <-done, <-errs
			if err != nil {
				t.Fatalf("sender: %v", err)
			}
			if res.Controller == nil {
				t.Fatal("SendResult.Controller is nil for a controlled transfer")
			}
			st := res.Controller
			if st.Policy != name {
				t.Errorf("Stats().Policy = %q, want %q", st.Policy, name)
			}
			if st.Windows == 0 || st.FinalWindow == 0 {
				t.Errorf("empty trajectory: %+v", st)
			}
		})
	}
}
