package core

import (
	"fmt"

	"blastlan/internal/wire"
)

// sendSlidingWindow implements the paper's sliding-window sender: every
// packet is individually acknowledged but the sender continues to transmit
// without waiting; the window is assumed large enough that it never closes
// (§1, Figure 3.c).
//
// After each transmission the sender polls (without blocking) for
// acknowledgements that have arrived, copying them out of the interface —
// this per-packet ack handling is exactly the Ca-per-cycle overhead that
// makes sliding window slightly slower than blast (§2.1.2). Error recovery
// is go-back-n from the highest cumulative acknowledgement, the classic
// strategy for this protocol class (§4).
func sendSlidingWindow(env Env, c Config) (SendResult, error) {
	var res SendResult
	start := env.Now()
	n := c.NumPackets()
	base := 0 // lowest unacknowledged sequence number (cumulative)
	scratch := scratchPacket(env)
	for round := 0; round < c.MaxAttempts; round++ {
		res.Rounds++
		// Transmission phase: send from the retransmission point to the
		// end, draining at most one arrived ack per cycle.
		for seq := base; seq < n; seq++ {
			pkt := scratch
			if pkt == nil {
				pkt = new(wire.Packet)
			}
			if err := env.Send(c.fillData(pkt, seq, n, round, seq == n-1)); err != nil {
				return res, err
			}
			res.DataPackets++
			if round > 0 {
				res.Retransmits++
			}
			base = pollAcks(env, c, &res, base)
		}
		// Collection phase: wait for the window to drain; a silent Tr
		// means the packet at base (or its ack) was lost.
		for base < n {
			advanced, ok := collectAck(env, c, &res, base)
			if !ok {
				break // timeout: go back to base
			}
			base = advanced
		}
		if base >= n {
			res.Elapsed = env.Now() - start
			return res, nil
		}
	}
	return res, fmt.Errorf("sliding-window at seq %d/%d: %w", base, n, ErrGiveUp)
}

// pollAcks drains at most one pending acknowledgement without blocking and
// returns the updated cumulative base.
func pollAcks(env Env, c Config, res *SendResult, base int) int {
	resp, err := env.Recv(0)
	if err != nil {
		return base // nothing waiting
	}
	if resp.Trans == c.TransferID && resp.Type == wire.TypeAck {
		res.AcksReceived++
		if int(resp.Seq) > base {
			return int(resp.Seq)
		}
	}
	return base
}

// collectAck blocks up to Tr for an acknowledgement advancing the window.
// It returns the new base and whether the wait succeeded.
func collectAck(env Env, c Config, res *SendResult, base int) (int, bool) {
	remaining := c.RetransTimeout
	for remaining > 0 {
		t0 := env.Now()
		resp, err := env.Recv(remaining)
		if err != nil {
			res.Timeouts++
			return base, false
		}
		remaining -= env.Now() - t0
		if resp.Trans != c.TransferID || resp.Type != wire.TypeAck {
			continue
		}
		res.AcksReceived++
		if int(resp.Seq) > base {
			return int(resp.Seq), true
		}
		// Duplicate ack: window did not advance; keep waiting.
	}
	res.Timeouts++
	return base, false
}
