package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"blastlan/internal/wire"
)

// Resumable pulls: the client-side failure-recovery layer above Request.
// A plain Request already survives packet loss (Tr, NAKs, MaxAttempts), but
// it assumes the serving session stays alive; if the server crashes,
// restarts, or sheds the session, the whole transfer starts over. PullResume
// instead tracks the highest verified contiguous chunk and, when a session
// dies (ErrGiveUp, an idle timeout, a reset conn) or the server answers
// BUSY, re-issues the request as an offset REQ — the same stripe-range
// fields a striped transfer uses (wire.Req.OffsetChunks/Total) — so the
// server resumes the stream at the frontier and no verified byte crosses
// the wire twice. This is the restart-of-interrupted-transfers behaviour
// production bulk movers (GridFTP, Globus) treat as table stakes.
//
// Chunks are verified per arrival (each new chunk's Internet checksum is
// recorded) and the whole-transfer checksum is merged from the per-chunk
// sums via wire.SumAcc.AddChecksumAt — identical to the value a single
// uninterrupted Request would have reported.

// ResumeOptions configures PullResume's recovery behaviour. The zero value
// gives a bounded, jittered exponential backoff suitable for real networks;
// deterministic simulations set Seed and Sleep.
type ResumeOptions struct {
	// MaxResumes bounds how many resumed sessions may follow a session
	// failure (default 8). BUSY refusals do not consume this budget.
	MaxResumes int

	// MaxBusyWaits bounds how many BUSY refusals the client honors before
	// giving up (default 64). Overload scenarios with long queues raise it.
	MaxBusyWaits int

	// Backoff is the initial retry delay (default 50ms). It doubles per
	// consecutive failed session, resets when a session makes progress, and
	// is capped by MaxBackoff (default 5s). A BUSY reply's retry-after hint
	// overrides the step when larger.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// Seed drives the backoff jitter (a deterministic rng, so a simulated
	// client's recovery schedule is reproducible).
	Seed int64

	// Sleep, when non-nil, performs the backoff waits. Defaults to the
	// env's own SleepFor method when it has one (the simulator's virtual
	// clock) and time.Sleep otherwise.
	Sleep func(time.Duration)

	// Redial, when non-nil, is called before each resume to replace the
	// env — a fresh socket to the same server, for substrates whose conns
	// die with the session. BUSY waits keep the current env.
	Redial func() (Env, error)

	// Cancel, when non-nil, is polled between sessions; returning true
	// abandons recovery and surfaces the last error (the striped repair
	// path cancels a stripe when a sibling fails fatally).
	Cancel func() bool

	// OnResume, when non-nil, observes each resume: its ordinal, the
	// logical-stream chunk offset being re-requested, and the error that
	// killed the previous session.
	OnResume func(resume int, offsetChunks int, cause error)
}

// ResumeStats reports how a resumable pull recovered.
type ResumeStats struct {
	Sessions      int // REQ sessions issued; 1 means no recovery was needed
	BusyWaits     int // BUSY refusals honored
	ResumedChunks int // chunks re-requested by resume REQs (unverified at resume time)
	DupChunks     int // chunk arrivals discarded because already verified
}

const (
	defaultMaxResumes   = 8
	defaultMaxBusyWaits = 64
	defaultBackoff      = 50 * time.Millisecond
	defaultMaxBackoff   = 5 * time.Second
)

// sleeperOf resolves the backoff sleep function for env.
func sleeperOf(env Env, opts ResumeOptions) func(time.Duration) {
	if opts.Sleep != nil {
		return opts.Sleep
	}
	if s, ok := env.(interface{ SleepFor(time.Duration) }); ok {
		return s.SleepFor
	}
	return time.Sleep
}

// backoffStep is the capped exponential delay after `consecutive` failures.
func backoffStep(base time.Duration, consecutive int, limit time.Duration) time.Duration {
	d := base
	for i := 0; i < consecutive && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}

// jittered widens d by 0..50% so a crowd of refused clients does not
// reconverge on the server in lockstep.
func jittered(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// addRecv folds one session's receiver counters into the aggregate.
func addRecv(agg *RecvResult, r RecvResult) {
	agg.DataPackets += r.DataPackets
	agg.Duplicates += r.Duplicates
	agg.AcksSent += r.AcksSent
	agg.NaksSent += r.NaksSent
	agg.LingerEvents += r.LingerEvents
	agg.LingerAcks += r.LingerAcks
	agg.LingerNaks += r.LingerNaks
}

// PullResume performs the pull cfg describes with transfer-level failure
// recovery: sessions that die are resumed from the highest verified
// contiguous chunk with an offset REQ, BUSY refusals are honored with the
// server's retry-after hint, and backoff between sessions is exponential
// with seeded jitter. The returned RecvResult aggregates packet counters
// across every session; Data, Bytes and Checksum describe the reassembled
// transfer exactly as an uninterrupted Request would report them.
//
// cfg may itself be a stripe (StripeOffset/StripeTotal set): resumes then
// re-request the unverified tail of that stripe. With cfg.Sink set, each
// distinct chunk is delivered to it exactly once, at its offset within
// cfg's own byte range, regardless of how many sessions it took.
func PullResume(env Env, cfg Config, opts ResumeOptions) (RecvResult, ResumeStats, error) {
	var stats ResumeStats
	if cfg.MaxAttempts == 0 {
		// The resume layer owns the long-haul retry policy: a session that
		// cannot get a packet through in a dozen REQ rounds is declared
		// dead and resumed, instead of a single session grinding through
		// Config's huge standalone MaxAttempts default.
		cfg.MaxAttempts = 12
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return RecvResult{}, stats, err
	}
	chunk := c.ChunkSize
	total := c.NumPackets()
	if total == 0 {
		return RecvResult{}, stats, fmt.Errorf("%w: nothing to pull", ErrBadConfig)
	}

	seen := make([]bool, total)
	sums := make([]uint16, total)
	userSink := c.Sink
	var buf []byte
	if userSink == nil {
		buf = make([]byte, c.Bytes)
	}

	maxResumes := opts.MaxResumes
	if maxResumes == 0 {
		maxResumes = defaultMaxResumes
	}
	maxBusy := opts.MaxBusyWaits
	if maxBusy == 0 {
		maxBusy = defaultMaxBusyWaits
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = defaultMaxBackoff
	}
	sleep := sleeperOf(env, opts)
	rng := rand.New(rand.NewSource(opts.Seed*-7046029254386353131 + -1442695040888963407))

	var agg RecvResult
	start := env.Now()
	frontier, resumes, consecutive := 0, 0, 0
	for {
		base := frontier
		acfg := c
		acfg.surfaceBusy = true // this layer owns the busy-wait policy
		acfg.Bytes = c.Bytes - base*chunk
		acfg.StripeOffset = c.StripeOffset + base*chunk
		if acfg.StripeTotal == 0 && acfg.StripeOffset > 0 {
			// A resumed unstriped pull becomes an offset view of its own
			// stream, so the server resolves the range like any stripe.
			acfg.StripeTotal = c.StripeOffset + c.Bytes
		}
		acfg.Sink = func(off int, b []byte) {
			idx := base + off/chunk
			if idx >= total || seen[idx] {
				stats.DupChunks++
				return
			}
			seen[idx] = true
			sums[idx] = wire.Checksum(b)
			gOff := idx * chunk
			if userSink != nil {
				userSink(gOff, b)
			} else {
				copy(buf[gOff:], b)
			}
		}
		stats.Sessions++
		if base > 0 {
			stats.ResumedChunks += total - base
		}
		res, err := Request(env, acfg)
		addRecv(&agg, res)
		if err == nil {
			break
		}
		for frontier < total && seen[frontier] {
			frontier++
		}
		if frontier > base {
			consecutive = 0 // the session made progress; restart the ramp
		}
		if frontier >= total {
			break // every chunk verified; only the session teardown was lost
		}
		agg.Elapsed = env.Now() - start
		if errors.Is(err, ErrBadConfig) {
			// The request's shape was refused; re-sending it cannot help.
			return agg, stats, err
		}
		if opts.Cancel != nil && opts.Cancel() {
			return agg, stats, err
		}
		var busy *BusyError
		if errors.As(err, &busy) {
			stats.BusyWaits++
			if stats.BusyWaits > maxBusy {
				return agg, stats, fmt.Errorf("refused %d times: %w", stats.BusyWaits, err)
			}
			wait := backoffStep(backoff, consecutive, maxBackoff)
			if busy.RetryAfter > wait {
				wait = busy.RetryAfter
			}
			sleep(jittered(rng, wait))
			consecutive++
			continue
		}
		resumes++
		if resumes > maxResumes {
			return agg, stats, fmt.Errorf("resume budget (%d) exhausted after %d sessions: %w",
				maxResumes, stats.Sessions, err)
		}
		if opts.OnResume != nil {
			opts.OnResume(resumes, c.StripeOffset/chunk+frontier, err)
		}
		sleep(jittered(rng, backoffStep(backoff, consecutive, maxBackoff)))
		consecutive++
		if opts.Redial != nil {
			ne, rerr := opts.Redial()
			if rerr != nil {
				return agg, stats, fmt.Errorf("resume redial: %w", rerr)
			}
			env = ne
			sleep = sleeperOf(env, opts)
		}
	}

	var acc wire.SumAcc
	for i := 0; i < total; i++ {
		acc.AddChecksumAt(i*chunk, sums[i])
	}
	agg.Completed = true
	agg.Bytes = c.Bytes
	agg.Checksum = acc.Sum16()
	agg.Data = buf
	agg.Elapsed = env.Now() - start
	return agg, stats, nil
}
