package core

import (
	"fmt"
	"time"

	"blastlan/internal/wire"
)

// sendStopAndWait implements the paper's stop-and-wait sender: the source
// refrains from sending a packet until it has received an acknowledgement
// for the previous one (Figure 1, Figure 3.a). Lost packets or acks are
// handled by retransmitting the single outstanding packet after Tr (§3.1.1).
func sendStopAndWait(env Env, c Config) (SendResult, error) {
	var res SendResult
	start := env.Now()
	n := c.NumPackets()
	est := newRTO(c)
	for seq := 0; seq < n; seq++ {
		acked := false
		for attempt := 0; attempt < c.MaxAttempts && !acked; attempt++ {
			if err := env.Send(c.dataPacket(seq, n, attempt, seq == n-1)); err != nil {
				return res, err
			}
			res.DataPackets++
			if attempt > 0 {
				res.Retransmits++
			}
			res.Rounds++
			sent := env.Now()
			acked = awaitCumulativeAck(env, c, &res, seq+1, est.timeout())
			if acked && attempt == 0 {
				// Karn's rule: sample only unambiguous exchanges.
				est.sample(env.Now() - sent)
			}
		}
		if !acked {
			return res, fmt.Errorf("stop-and-wait seq %d: %w", seq, ErrGiveUp)
		}
	}
	res.Elapsed = env.Now() - start
	return res, nil
}

// awaitCumulativeAck waits up to timeout for an acknowledgement with
// Seq >= want, ignoring stale acks and foreign packets. It reports whether
// the ack arrived before the timeout.
func awaitCumulativeAck(env Env, c Config, res *SendResult, want int, timeout time.Duration) bool {
	remaining := timeout
	for remaining > 0 {
		t0 := env.Now()
		resp, err := env.Recv(remaining)
		if err != nil {
			if IsTimeout(err) {
				res.Timeouts++
				return false
			}
			return false
		}
		remaining -= env.Now() - t0
		if resp.Trans != c.TransferID || resp.Type != wire.TypeAck {
			continue
		}
		res.AcksReceived++
		if int(resp.Seq) >= want {
			return true
		}
		// Stale (duplicate) ack: keep waiting out the remaining budget.
	}
	res.Timeouts++
	return false
}

// recvInOrder is the shared receiver for stop-and-wait and sliding-window:
// data packets are delivered in order and every data packet is answered
// with a cumulative acknowledgement carrying the next expected sequence
// number. Duplicates and out-of-order packets re-elicit the current
// cumulative ack, which is what makes go-back-n recovery work.
func recvInOrder(env Env, c Config) (RecvResult, error) {
	var res RecvResult
	n := c.NumPackets()
	next := 0
	start := env.Now()
	idle := c.receiverIdle()
	for next < n {
		pkt, err := env.Recv(idle)
		if err != nil {
			res.Elapsed = env.Now() - start
			return res, fmt.Errorf("receiver idle with %d/%d packets: %w", next, n, err)
		}
		if pkt.Trans != c.TransferID {
			continue
		}
		if pkt.Type == wire.TypeBusy {
			// Admission refusal: the server will not serve this session.
			// Not a timeout, so Request surfaces it to the caller at once.
			// Ignored once data has flowed — by then we were admitted, and
			// the BUSY is a straggler from an earlier refused REQ.
			if res.DataPackets == 0 {
				res.Elapsed = env.Now() - start
				return res, busyErrorOf(pkt)
			}
			continue
		}
		if pkt.Type == wire.TypeReq {
			// Retransmitted push announcement: our go-ahead was lost.
			if err := env.Send(goAhead(c)); err != nil {
				return res, err
			}
			continue
		}
		if pkt.Type != wire.TypeData {
			continue
		}
		res.DataPackets++
		if int(pkt.Seq) == next {
			deliverChunk(&res, c, pkt)
			next++
		} else {
			res.Duplicates++
		}
		if err := env.Send(c.ackPacket(next, n)); err != nil {
			return res, err
		}
		res.AcksSent++
	}
	res.Completed = true
	res.Elapsed = env.Now() - start
	finishData(&res)
	lingerReAck(env, c, &res, func(pkt *wire.Packet) *wire.Packet {
		return c.ackPacket(n, n)
	})
	return res, nil
}

// deliverChunk accounts for (and in real mode stores or streams) one new
// data packet. With Config.Sink set the chunk is handed to the sink and the
// whole-transfer checksum accumulates incrementally — no transfer-sized
// buffer ever exists.
func deliverChunk(res *RecvResult, c Config, pkt *wire.Packet) {
	if pkt.Payload != nil {
		off := int(pkt.Seq) * c.ChunkSize
		if c.Sink != nil {
			res.usedSink = true
			res.sinkSum.AddAt(off, pkt.Payload)
			c.Sink(off, pkt.Payload)
			res.Bytes += len(pkt.Payload)
			return
		}
		if res.Data == nil {
			res.Data = make([]byte, c.Bytes)
		}
		copy(res.Data[off:], pkt.Payload)
		res.Bytes += len(pkt.Payload)
		return
	}
	size := c.ChunkSize
	if rem := c.Bytes - int(pkt.Seq)*c.ChunkSize; rem < size {
		size = rem
	}
	res.Bytes += size
}

// finishData computes the whole-transfer software checksum (the one Spector
// suggests for multi-packet transfers, §4) once all chunks are assembled —
// or, for streamed (Sink) transfers, closes the incremental accumulator.
func finishData(res *RecvResult) {
	if res.Data != nil {
		res.Checksum = wire.Checksum(res.Data)
		return
	}
	if res.usedSink {
		res.Checksum = res.sinkSum.Sum16()
	}
}

// lingerReAck keeps the receiver alive for Config.Linger after completion,
// re-answering retransmitted data whose acknowledgements were evidently
// lost. respond builds the reply for a retransmitted packet; returning nil
// suppresses the reply. The linger timer restarts on every received packet.
// A FlagDone FIN from the sender ends the linger immediately.
func lingerReAck(env Env, c Config, res *RecvResult, respond func(*wire.Packet) *wire.Packet) {
	for {
		pkt, err := env.Recv(c.Linger)
		if err != nil {
			return // silence: the sender is satisfied (or gone)
		}
		if pkt.Trans != c.TransferID {
			continue
		}
		if pkt.Type == wire.TypeAck && pkt.Flags&wire.FlagDone != 0 {
			return // the sender has its ack: release the receiver
		}
		if pkt.Type != wire.TypeData {
			continue
		}
		res.DataPackets++
		res.Duplicates++
		res.LingerEvents++
		if reply := respond(pkt); reply != nil {
			if env.Send(reply) != nil {
				return
			}
			if reply.Type == wire.TypeAck {
				res.AcksSent++
				res.LingerAcks++
			} else {
				res.NaksSent++
				res.LingerNaks++
			}
		}
	}
}

// receiverIdle bounds how long the receiver waits for the next packet of an
// incomplete transfer before concluding the sender is gone.
func (c Config) receiverIdle() time.Duration {
	if c.ReceiverIdle > 0 {
		return c.ReceiverIdle
	}
	// Generous default: virtual time is free in simulation, and real
	// callers set an explicit bound. Must comfortably exceed any legitimate
	// inter-packet gap (a full window retransmission plus several Tr).
	return 64*c.RetransTimeout + 10*time.Second
}
