// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming moments (Welford), quantiles, histograms
// and duration-typed convenience wrappers.
//
// Everything here is deterministic and allocation-light; benchmarks feed
// millions of Monte-Carlo samples through Welford accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford is a numerically stable streaming accumulator for mean and
// variance (Welford's online algorithm). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Min and Max return the observed extremes (0 with no observations).
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance (n denominator).
func (w *Welford) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of a normal-approximation 95 % confidence
// interval for the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Merge combines another accumulator into w (parallel Welford / Chan et al.).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Durations is a Welford wrapper typed for time.Duration samples, the unit
// every experiment in this repository reports.
type Durations struct{ w Welford }

// Add incorporates one duration observation.
func (d *Durations) Add(x time.Duration) { d.w.Add(float64(x)) }

// N returns the number of observations.
func (d *Durations) N() int64 { return d.w.N() }

// Mean returns the mean duration.
func (d *Durations) Mean() time.Duration { return time.Duration(d.w.Mean()) }

// StdDev returns the sample standard deviation.
func (d *Durations) StdDev() time.Duration { return time.Duration(d.w.StdDev()) }

// Min and Max return observed extremes.
func (d *Durations) Min() time.Duration { return time.Duration(d.w.Min()) }
func (d *Durations) Max() time.Duration { return time.Duration(d.w.Max()) }

// CI95 returns the 95 % confidence half-width for the mean.
func (d *Durations) CI95() time.Duration { return time.Duration(d.w.CI95()) }

// Welford exposes the underlying accumulator.
func (d *Durations) Welford() *Welford { return &d.w }

// Sample is an in-memory sample supporting exact quantiles.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the sample size.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns NaN on an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median is Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean (NaN on empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Histogram is a fixed-bin histogram over [Lo, Hi); out-of-range samples
// are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: need lo < hi, got [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard float rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 {
	n := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Render draws the histogram as ASCII rows of at most width '#' characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var peak int64 = 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	out := ""
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := int(int64(width) * c / peak)
		out += fmt.Sprintf("%12.4g ┤%s %d\n", h.Lo+float64(i)*binW, repeat('#', bar), c)
	}
	return out
}

func repeat(ch byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}

// Geometric helpers for the paper's attempt-count analysis (§3.1): the
// number of *failures* before the first success when each attempt fails
// independently with probability p.

// GeomMeanFailures returns E[failures] = p/(1-p).
func GeomMeanFailures(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	if p <= 0 {
		return 0
	}
	return p / (1 - p)
}

// GeomVarFailures returns Var[failures] = p/(1-p)².
func GeomVarFailures(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	if p <= 0 {
		return 0
	}
	return p / ((1 - p) * (1 - p))
}

// RelErr returns |a-b| / max(|a|,|b|), or 0 when both are 0; convenient for
// tolerance assertions in cross-validation tests.
func RelErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
