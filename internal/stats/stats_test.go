package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", got)
	}
	// Population variance of this classic data set is 4.
	if got := w.PopVariance(); math.Abs(got-4) > 1e-12 {
		t.Errorf("pop variance = %g, want 4", got)
	}
	if got := w.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("sample variance = %g, want 32/7", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single observation: mean 42, variance 0")
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return RelErr(w.Mean(), mean) < 1e-9 && RelErr(w.Variance(), naiveVar) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMerge(t *testing.T) {
	f := func(a, b []int16) bool {
		var wa, wb, wall Welford
		for _, v := range a {
			wa.Add(float64(v))
			wall.Add(float64(v))
		}
		for _, v := range b {
			wb.Add(float64(v))
			wall.Add(float64(v))
		}
		wa.Merge(&wb)
		if wa.N() != wall.N() {
			return false
		}
		if wall.N() == 0 {
			return true
		}
		return RelErr(wa.Mean(), wall.Mean()) < 1e-9 &&
			math.Abs(wa.Variance()-wall.Variance()) <= 1e-6*(1+wall.Variance()) &&
			wa.Min() == wall.Min() && wa.Max() == wall.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurations(t *testing.T) {
	var d Durations
	d.Add(1 * time.Millisecond)
	d.Add(3 * time.Millisecond)
	if got := d.Mean(); got != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", got)
	}
	if d.Min() != time.Millisecond || d.Max() != 3*time.Millisecond {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if d.N() != 2 {
		t.Errorf("N = %d", d.N())
	}
	if d.StdDev() <= 0 {
		t.Error("stddev should be positive")
	}
	if d.Welford().N() != 2 {
		t.Error("Welford() should expose the accumulator")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sample quantile should be NaN")
	}
	for i := 10; i >= 1; i-- { // insert unsorted
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("q1 = %g", got)
	}
	if got := s.Median(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("median = %g, want 5.5", got)
	}
	if got := s.Mean(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("mean = %g, want 5.5", got)
	}
	if s.N() != 10 {
		t.Errorf("N = %d", s.N())
	}
	// Quantiles are monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Error("render should contain bars")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo==hi should error")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("lo>hi should error")
	}
}

// Property: every in-range float lands in exactly one bin.
func TestHistogramBinning(t *testing.T) {
	h, _ := NewHistogram(0, 1, 7)
	f := func(u uint32) bool {
		x := float64(u) / float64(math.MaxUint32) // [0,1]
		before := h.Total()
		h.Add(x)
		return h.Total() == before+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomHelpers(t *testing.T) {
	if GeomMeanFailures(0) != 0 || GeomVarFailures(0) != 0 {
		t.Error("p=0 should give 0")
	}
	if !math.IsInf(GeomMeanFailures(1), 1) || !math.IsInf(GeomVarFailures(1), 1) {
		t.Error("p=1 should give +Inf")
	}
	// Monte-Carlo sanity: sample geometric failures at p=0.3.
	rng := rand.New(rand.NewSource(1))
	var w Welford
	for i := 0; i < 200000; i++ {
		n := 0
		for rng.Float64() < 0.3 {
			n++
		}
		w.Add(float64(n))
	}
	if RelErr(w.Mean(), GeomMeanFailures(0.3)) > 0.02 {
		t.Errorf("geometric mean mismatch: %g vs %g", w.Mean(), GeomMeanFailures(0.3))
	}
	if RelErr(w.Variance(), GeomVarFailures(0.3)) > 0.05 {
		t.Errorf("geometric variance mismatch: %g vs %g", w.Variance(), GeomVarFailures(0.3))
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) should be 0")
	}
	if RelErr(1, 1) != 0 {
		t.Error("RelErr(1,1) should be 0")
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(90,100) = %g, want 0.1", got)
	}
	if RelErr(-1, 1) != 2 {
		t.Errorf("RelErr(-1,1) = %g, want 2", RelErr(-1, 1))
	}
}
