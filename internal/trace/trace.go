// Package trace records simulated activity spans and renders them as ASCII
// timelines, reproducing the paper's Figure 2 (single-packet exchange) and
// Figure 3 (stop-and-wait vs blast vs sliding-window pipelining) directly
// from simulator executions, and the component breakdown of Table 2.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"blastlan/internal/sim"
)

// Recorder accumulates spans from a simulation run. Install Add as the
// network's Trace callback.
//
// Spans belonging to the post-measurement FIN (the sender's best-effort
// linger release, labelled "FIN" by the simulator) are dropped: they are
// teardown housekeeping that happens after the paper's measurement window
// closes, and including them would distort the Figure 2/3 renderings and
// the Table 2 breakdown.
type Recorder struct {
	spans []sim.Span
}

// Add records one span.
func (r *Recorder) Add(s sim.Span) {
	if strings.Contains(s.Label, "FIN") {
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded spans in arrival order.
func (r *Recorder) Spans() []sim.Span { return r.spans }

// Reset discards all recorded spans.
func (r *Recorder) Reset() { r.spans = r.spans[:0] }

// Window returns the earliest start and latest end across all spans.
func (r *Recorder) Window() (start, end time.Duration) {
	if len(r.spans) == 0 {
		return 0, 0
	}
	start, end = r.spans[0].Start, r.spans[0].End
	for _, s := range r.spans[1:] {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// laneKey orders timeline rows: senders first, the wire in the middle,
// receivers last — matching the layout of the paper's Figure 3.
func laneKey(host, lane string) int {
	switch {
	case host == "src":
		return 0
	case host == "net":
		return 1
	case host == "dst":
		return 2
	}
	return 3
}

// Render draws the recorded spans as an ASCII Gantt chart of the given
// width (characters of timeline, excluding the row labels). Each row is one
// (host, lane); spans are filled with '█' for CPU activity and '▒' for wire
// occupancy, with the span label embedded when it fits.
func (r *Recorder) Render(width int) string {
	if len(r.spans) == 0 {
		return "(no spans)\n"
	}
	if width <= 10 {
		width = 72
	}
	start, end := r.Window()
	span := end - start
	if span <= 0 {
		span = 1
	}
	scale := func(t time.Duration) int {
		x := int(int64(width) * int64(t-start) / int64(span))
		if x < 0 {
			x = 0
		}
		if x > width {
			x = width
		}
		return x
	}

	// Collect rows in a stable, Figure-3-like order.
	type rowid struct{ host, lane string }
	rows := map[rowid][]sim.Span{}
	var ids []rowid
	for _, s := range r.spans {
		id := rowid{s.Host, s.Lane}
		if _, ok := rows[id]; !ok {
			ids = append(ids, id)
		}
		rows[id] = append(rows[id], s)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if ka, kb := laneKey(a.host, a.lane), laneKey(b.host, b.lane); ka != kb {
			return ka < kb
		}
		if a.host != b.host {
			return a.host < b.host
		}
		return a.lane < b.lane
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s t=%v … %v (%v total)\n", "", start, end, span)
	for _, id := range ids {
		line := []rune(strings.Repeat(" ", width))
		fill := '█'
		if id.lane == sim.LaneWire {
			fill = '▒'
		}
		for _, s := range rows[id] {
			lo, hi := scale(s.Start), scale(s.End)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			for x := lo; x < hi; x++ {
				line[x] = fill
			}
			// Embed the label if the box can hold it.
			if label := []rune(s.Label); hi-lo >= len(label)+2 {
				for i, ch := range label {
					line[lo+1+i] = ch
				}
			}
		}
		fmt.Fprintf(&b, "%-10s %s\n", id.host+" "+id.lane, string(line))
	}
	return b.String()
}

// BreakdownRow is one component of a Table 2-style cost breakdown.
type BreakdownRow struct {
	Operation string
	Time      time.Duration
}

// Breakdown aggregates span durations into the paper's Table 2 components:
// per-host copy-in/copy-out of data and ack packets and their wire times,
// in first-occurrence order.
func (r *Recorder) Breakdown() []BreakdownRow {
	type key struct{ host, lane, label string }
	totals := map[key]time.Duration{}
	var order []key
	for _, s := range r.spans {
		k := key{s.Host, s.Lane, s.Label}
		if _, ok := totals[k]; !ok {
			order = append(order, k)
		}
		totals[k] += s.End - s.Start
	}
	out := make([]BreakdownRow, 0, len(order))
	for _, k := range order {
		out = append(out, BreakdownRow{
			Operation: describe(k.host, k.lane, k.label),
			Time:      totals[k],
		})
	}
	return out
}

// describe renders a span key in the wording of the paper's Table 2.
func describe(host, lane, label string) string {
	dir, kind := splitLabel(label)
	pktName := "data"
	if strings.HasPrefix(kind, "ACK") || strings.HasPrefix(kind, "NAK") {
		pktName = "ack"
	}
	if lane == sim.LaneWire {
		return fmt.Sprintf("Transmit %s", pktName)
	}
	side := "sender's"
	if host == "dst" {
		side = "receiver's"
	}
	switch dir {
	case "in":
		return fmt.Sprintf("Copy %s into %s interface", pktName, side)
	case "out":
		return fmt.Sprintf("Copy %s out of %s interface", pktName, side)
	}
	return fmt.Sprintf("%s %s %s", host, lane, label)
}

// splitLabel splits "in:DATA" into ("in", "DATA"); wire labels like
// "DATA 3" return ("", "DATA 3").
func splitLabel(label string) (dir, kind string) {
	if i := strings.IndexByte(label, ':'); i >= 0 {
		return label[:i], label[i+1:]
	}
	return "", label
}

// Total sums all rows — Table 2's "Total" line.
func Total(rows []BreakdownRow) time.Duration {
	var t time.Duration
	for _, r := range rows {
		t += r.Time
	}
	return t
}
