package trace

import (
	"strings"
	"testing"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/sim"
	"blastlan/internal/simrun"
)

func record(t *testing.T, cfg core.Config, cost params.CostModel) *Recorder {
	t.Helper()
	var rec Recorder
	res, err := simrun.Transfer(cfg, simrun.Options{Cost: cost, Trace: rec.Add})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("transfer failed: %v %v", res.SendErr, res.RecvErr)
	}
	return &rec
}

func onePacketExchange(t *testing.T) *Recorder {
	return record(t, core.Config{
		TransferID: 1, Bytes: 1024, Protocol: core.StopAndWait,
		RetransTimeout: 100 * time.Millisecond,
	}, params.Standalone3Com())
}

func TestEmptyRecorder(t *testing.T) {
	var r Recorder
	if got := r.Render(80); !strings.Contains(got, "no spans") {
		t.Errorf("empty render = %q", got)
	}
	s, e := r.Window()
	if s != 0 || e != 0 {
		t.Error("empty window should be zero")
	}
	if len(r.Breakdown()) != 0 {
		t.Error("empty breakdown")
	}
}

// A single-packet reliable exchange must decompose into exactly Table 2's
// six components with the paper's values.
func TestTable2Breakdown(t *testing.T) {
	rec := onePacketExchange(t)
	rows := rec.Breakdown()
	want := map[string]time.Duration{
		"Copy data into sender's interface":     1350 * time.Microsecond,
		"Transmit data":                         819200 * time.Nanosecond,
		"Copy data out of receiver's interface": 1350 * time.Microsecond,
		"Copy ack into receiver's interface":    170 * time.Microsecond,
		"Transmit ack":                          51200 * time.Nanosecond,
		"Copy ack out of sender's interface":    170 * time.Microsecond,
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for _, r := range rows {
		w, ok := want[r.Operation]
		if !ok {
			t.Errorf("unexpected row %q", r.Operation)
			continue
		}
		if r.Time != w {
			t.Errorf("%s = %v, want %v", r.Operation, r.Time, w)
		}
	}
	// Total ≈ 3.91 ms (Table 2's components sum).
	total := Total(rows)
	if total < 3900*time.Microsecond || total > 3920*time.Microsecond {
		t.Errorf("total = %v, want ≈ 3.91 ms", total)
	}
}

func TestRenderContainsLanes(t *testing.T) {
	rec := onePacketExchange(t)
	out := rec.Render(100)
	for _, want := range []string{"src cpu", "net wire", "dst cpu", "█", "▒"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Rows are ordered sender, wire, receiver (Figure 3 layout).
	src := strings.Index(out, "src cpu")
	net := strings.Index(out, "net wire")
	dst := strings.Index(out, "dst cpu")
	if !(src < net && net < dst) {
		t.Errorf("row order wrong:\n%s", out)
	}
}

// The blast timeline must show overlapped (pipelined) activity: total
// wall time strictly less than the sum of span durations on src and dst.
func TestBlastTimelineOverlaps(t *testing.T) {
	rec := record(t, core.Config{
		TransferID: 1, Bytes: 3 * 1024, Protocol: core.Blast,
		Strategy: core.GoBackN, RetransTimeout: 100 * time.Millisecond,
	}, params.Standalone3Com())
	start, end := rec.Window()
	wall := end - start
	var busy time.Duration
	for _, s := range rec.Spans() {
		if s.Lane == sim.LaneCPU {
			busy += s.End - s.Start
		}
	}
	if busy <= wall {
		t.Errorf("no CPU overlap: busy=%v wall=%v (blast should pipeline)", busy, wall)
	}
}

// Stop-and-wait must NOT overlap: the two processors are never active in
// parallel (§2.1.2), so summed CPU+wire activity ≤ wall time.
func TestStopAndWaitTimelineSerial(t *testing.T) {
	rec := record(t, core.Config{
		TransferID: 1, Bytes: 3 * 1024, Protocol: core.StopAndWait,
		RetransTimeout: 100 * time.Millisecond,
	}, params.Standalone3Com())
	start, end := rec.Window()
	wall := end - start
	var busy time.Duration
	for _, s := range rec.Spans() {
		busy += s.End - s.Start
	}
	if busy > wall {
		t.Errorf("stop-and-wait overlapped: busy=%v wall=%v", busy, wall)
	}
}

func TestReset(t *testing.T) {
	rec := onePacketExchange(t)
	if len(rec.Spans()) == 0 {
		t.Fatal("no spans recorded")
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestRenderTinyWidthDefaults(t *testing.T) {
	rec := onePacketExchange(t)
	out := rec.Render(1)
	if !strings.Contains(out, "src cpu") {
		t.Error("tiny width should fall back to default")
	}
}
