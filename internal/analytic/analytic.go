// Package analytic implements the paper's closed-form performance models:
// the error-free elapsed-time formulas of §2.1.3, the network-utilization
// expression, and the expected-time and standard-deviation analysis under
// independent packet loss of §3.1–3.2.
//
// Durations are computed in float64 nanoseconds internally and returned as
// time.Duration; probabilities are float64. All formulas are cross-validated
// against the discrete-event simulator (internal/sim) and the strategy-level
// Monte Carlo (internal/mc) in tests.
package analytic

import (
	"math"
	"time"

	"blastlan/internal/params"
)

// TimeStopAndWait returns T_SAW = N·(2C + T + 2Ca + Ta): every packet is a
// full serial exchange; the two processors are never active in parallel
// (§2.1.3, Figure 3.a).
func TimeStopAndWait(m params.CostModel, n int) time.Duration {
	per := 2*m.C() + m.T() + 2*m.Ca() + m.Ta()
	return time.Duration(n) * per
}

// TimeBlast returns T_B = N·(C + T) + C + 2Ca + Ta: the copy out of packet
// k at the receiver overlaps the copy in of packet k+1 at the sender, and a
// single acknowledgement closes the transfer (§2.1.3, Figure 3.b).
func TimeBlast(m params.CostModel, n int) time.Duration {
	return time.Duration(n)*(m.C()+m.T()) + m.C() + 2*m.Ca() + m.Ta()
}

// TimeSlidingWindow returns T_SW = N·(C + Ca + T) + C + Ta: like blast, but
// each cycle also copies one acknowledgement in and out of the interfaces
// (§2.1.3, Figure 3.c).
func TimeSlidingWindow(m params.CostModel, n int) time.Duration {
	return time.Duration(n)*(m.C()+m.Ca()+m.T()) + m.C() + m.Ta()
}

// TimeBlastDouble returns the double-buffered blast time of §2.1.3 /
// Figure 3.d: copies and transmissions pipeline, so the per-packet cost is
// max(C, T):
//
//	T_dbl = N·C + T + C + 2Ca + Ta   (T ≤ C)
//	T_dbl = N·T + 2C + 2Ca + Ta      (T > C)
//
// A third buffer provides no further improvement because C and T are
// constant (asserted by tests against the simulator).
func TimeBlastDouble(m params.CostModel, n int) time.Duration {
	tail := m.C() + 2*m.Ca() + m.Ta()
	if m.T() <= m.C() {
		return time.Duration(n)*m.C() + m.T() + tail
	}
	return time.Duration(n)*m.T() + m.C() + tail
}

// Utilization returns the fraction of the elapsed time the network is
// actually transmitting during a single-buffered blast transfer:
//
//	u_n = (N·T + Ta) / (N·T + Ta + N·C + C + 2Ca)
//
// For the paper's 64 KB transfer this is ≈ 38 % (§2.1.3).
func Utilization(m params.CostModel, n int) float64 {
	nt := float64(n) * float64(m.T())
	num := nt + float64(m.Ta())
	den := num + float64(n)*float64(m.C()) + float64(m.C()) + 2*float64(m.Ca())
	return num / den
}

// PFailExchange is the probability p_c that a 1-packet exchange fails:
// the data packet and its acknowledgement each fail independently with
// probability p_n, so p_c = 1 - (1-p_n)² (§3.1.1).
func PFailExchange(pn float64) float64 {
	return 1 - (1-pn)*(1-pn)
}

// PFailBlast is the probability p_c that a D-packet blast attempt fails:
// all D data packets and the acknowledgement must arrive, so
// p_c = 1 - (1-p_n)^(D+1) (§3.1.2).
func PFailBlast(pn float64, d int) float64 {
	return 1 - math.Pow(1-pn, float64(d)+1)
}

// ExpectedTimeStopAndWait returns the §3.1.1 expected elapsed time of a
// D-packet stop-and-wait transfer with per-exchange error-free time t01
// (the paper's T0(1)) and retransmission interval tr:
//
//	T(D) = D · [ T0(1) + (T0(1)+Tr) · p_c/(1-p_c) ]
func ExpectedTimeStopAndWait(t01, tr time.Duration, d int, pn float64) time.Duration {
	pc := PFailExchange(pn)
	if pc >= 1 {
		return time.Duration(math.MaxInt64)
	}
	per := float64(t01) + (float64(t01)+float64(tr))*pc/(1-pc)
	return time.Duration(float64(d) * per)
}

// ExpectedTimeBlast returns the §3.1.2 expected elapsed time of a D-packet
// blast with full retransmission on error, error-free time t0d (the paper's
// T0(D)) and retransmission interval tr:
//
//	T(D) = T0(D) + (T0(D)+Tr) · p_c/(1-p_c)
func ExpectedTimeBlast(t0d, tr time.Duration, d int, pn float64) time.Duration {
	pc := PFailBlast(pn, d)
	if pc >= 1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(t0d) + (float64(t0d)+float64(tr))*pc/(1-pc))
}

// StdDevFullNoNak returns the standard deviation of the blast elapsed time
// under full retransmission without negative acknowledgement (§3.2.1).
//
// Derivation: success on attempt i+1 has probability p_c^i(1-p_c); the
// elapsed time is T0(D) + F·(T0(D)+Tr) where F is the geometric number of
// failures, so
//
//	σ = (T0(D)+Tr) · √p_c / (1-p_c).
//
// (The paper's printed formula carries an extra (1+p_c) factor inside the
// root from its slightly different failed-attempt accounting; the two agree
// to first order in the p_c ≪ 1 region the paper analyses, and this exact
// form matches Monte-Carlo simulation — see the cross-validation tests.)
func StdDevFullNoNak(t0d, tr time.Duration, d int, pn float64) time.Duration {
	pc := PFailBlast(pn, d)
	if pc >= 1 {
		return time.Duration(math.MaxInt64)
	}
	sigma := (float64(t0d) + float64(tr)) * math.Sqrt(pc) / (1 - pc)
	return time.Duration(sigma)
}

// FullNakModes returns the probabilities of the two failure modes of an
// attempt under full retransmission *with* a negative acknowledgement
// (§3.2.2):
//
//	pNak    — the last packet arrived, at least one earlier data packet was
//	          lost, and the NAK made it back: the sender learns of the
//	          failure after only the response latency.
//	pSilent — the last packet, the (positive or negative) response was
//	          lost: the sender must wait out the full Tr.
//
// pNak + pSilent = PFailBlast(pn, d).
func FullNakModes(pn float64, d int) (pNak, pSilent float64) {
	pc := PFailBlast(pn, d)
	// last packet arrives: (1-pn); some of the D-1 unreliable packets lost:
	// 1-(1-pn)^(D-1); NAK survives: (1-pn).
	pNak = (1 - pn) * (1 - math.Pow(1-pn, float64(d-1))) * (1 - pn)
	pSilent = pc - pNak
	if pSilent < 0 {
		pSilent = 0
	}
	return pNak, pSilent
}

// StdDevFullNak returns the standard deviation of the blast elapsed time
// under full retransmission with a negative acknowledgement (§3.2.2), from
// the exact two-mode mixture:
//
//	X = T0 + Σ_{k=1..F} Y_k,   F ~ Geom(p_c),
//	Y = T0 + t_resp  with prob pNak/p_c   (NAK arrived)
//	Y = T0 + Tr      with prob pSilent/p_c (silence, timeout)
//
// so Var X = E[F]·Var Y + Var F · (E Y)². tresp is the response latency
// (≈ C + 2Ca + Ta + 2τ, small against T0). For p_n ≪ 1/D this reduces to
// the paper's observation that σ ≈ T0·√p_c/(1-p_c), essentially independent
// of Tr.
func StdDevFullNak(t0d, tr, tresp time.Duration, d int, pn float64) time.Duration {
	pc := PFailBlast(pn, d)
	if pc >= 1 {
		return time.Duration(math.MaxInt64)
	}
	if pc == 0 {
		return 0
	}
	pNak, pSilent := FullNakModes(pn, d)
	wNak, wSilent := pNak/pc, pSilent/pc
	yNak := float64(t0d) + float64(tresp)
	ySilent := float64(t0d) + float64(tr)
	meanY := wNak*yNak + wSilent*ySilent
	varY := wNak*(yNak-meanY)*(yNak-meanY) + wSilent*(ySilent-meanY)*(ySilent-meanY)
	meanF := pc / (1 - pc)
	varF := pc / ((1 - pc) * (1 - pc))
	varX := meanF*varY + varF*meanY*meanY
	return time.Duration(math.Sqrt(varX))
}

// ExpectedTimeFullNak returns the mean of the same §3.2.2 mixture model.
func ExpectedTimeFullNak(t0d, tr, tresp time.Duration, d int, pn float64) time.Duration {
	pc := PFailBlast(pn, d)
	if pc >= 1 {
		return time.Duration(math.MaxInt64)
	}
	if pc == 0 {
		return t0d
	}
	pNak, pSilent := FullNakModes(pn, d)
	wNak, wSilent := pNak/pc, pSilent/pc
	meanY := wNak*(float64(t0d)+float64(tresp)) + wSilent*(float64(t0d)+float64(tr))
	meanF := pc / (1 - pc)
	return time.Duration(float64(t0d) + meanF*meanY)
}

// ResponseLatency is the interval from the moment the last packet of a
// blast leaves the sender's interface to the moment the sender has copied
// the receiver's response out of its own interface: the receiver's copy-out
// of the last data packet, the response's copy-in, its wire time, and the
// sender's copy-out, plus two propagation delays.
func ResponseLatency(m params.CostModel) time.Duration {
	return m.C() + 2*m.Ca() + m.Ta() + 2*m.Propagation
}
