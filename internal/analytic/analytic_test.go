package analytic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/stats"
)

func TestErrorFreeFormulasMatchPaperNumbers(t *testing.T) {
	m := params.Standalone3Com()
	// §2.1: the worked example quotes ≈3.91 ms per stop-and-wait exchange.
	if per := TimeStopAndWait(m, 1); per < 3900*time.Microsecond || per > 3930*time.Microsecond {
		t.Errorf("T_SAW(1) = %v, want ≈ 3.91 ms", per)
	}
	// 64 KB: SAW ≈ 250 ms, B ≈ 140.6 ms, SW ≈ 151 ms.
	if d := TimeStopAndWait(m, 64); d < 249*time.Millisecond || d > 252*time.Millisecond {
		t.Errorf("T_SAW(64) = %v", d)
	}
	if d := TimeBlast(m, 64); d < 140*time.Millisecond || d > 141*time.Millisecond {
		t.Errorf("T_B(64) = %v", d)
	}
	if d := TimeSlidingWindow(m, 64); d < 150*time.Millisecond || d > 152*time.Millisecond {
		t.Errorf("T_SW(64) = %v", d)
	}
	// The ordering claim of the whole paper.
	if !(TimeBlast(m, 64) < TimeSlidingWindow(m, 64) &&
		TimeSlidingWindow(m, 64) < TimeStopAndWait(m, 64)) {
		t.Error("protocol ordering violated")
	}
}

func TestVKernelAnchors(t *testing.T) {
	m := params.VKernel()
	// Table 3 / Figure 5 anchors: T0(1) = 5.9 ms, T0(64) = 173 ms.
	if d := TimeStopAndWait(m, 1); d < 5850*time.Microsecond || d > 5950*time.Microsecond {
		t.Errorf("kernel T0(1) = %v, want ≈ 5.9 ms", d)
	}
	if d := TimeBlast(m, 64); d < 172*time.Millisecond || d > 174*time.Millisecond {
		t.Errorf("kernel T0(64) = %v, want ≈ 173 ms", d)
	}
}

func TestDoubleBufferedFormula(t *testing.T) {
	m := params.Standalone3Com() // T < C: copy-bound
	n := 64
	want := time.Duration(n)*m.C() + m.T() + m.C() + 2*m.Ca() + m.Ta()
	if got := TimeBlastDouble(m, n); got != want {
		t.Errorf("T_dbl = %v, want %v", got, want)
	}
	// Double buffering must beat single buffering.
	if TimeBlastDouble(m, n) >= TimeBlast(m, n) {
		t.Error("double buffering did not help")
	}
	// Transmission-bound case.
	fast := params.NewCostModel("fast", 400*time.Microsecond, 40*time.Microsecond, 10_000_000, 0)
	if fast.T() <= fast.C() {
		t.Fatal("premise")
	}
	wantFast := time.Duration(n)*fast.T() + 2*fast.C() + 2*fast.Ca() + fast.Ta()
	if got := TimeBlastDouble(fast, n); got != wantFast {
		t.Errorf("T_dbl(T>C) = %v, want %v", got, wantFast)
	}
}

func TestUtilization(t *testing.T) {
	m := params.Standalone3Com()
	// §2.1.3: "for the 64 kilobyte transfer ... network utilization is only
	// 38 percent".
	u := Utilization(m, 64)
	if u < 0.36 || u > 0.40 {
		t.Errorf("u_n(64) = %.3f, want ≈ 0.38", u)
	}
	// Utilization is monotone in n and bounded by T/(T+C).
	prev := 0.0
	for n := 1; n <= 1024; n *= 2 {
		u := Utilization(m, n)
		if u <= prev {
			t.Fatalf("utilization not increasing at n=%d", n)
		}
		prev = u
	}
	limit := float64(m.T()) / float64(m.T()+m.C())
	if prev >= limit {
		t.Errorf("utilization %.4f exceeded asymptote %.4f", prev, limit)
	}
}

func TestFailureProbabilities(t *testing.T) {
	if got := PFailExchange(0); got != 0 {
		t.Errorf("PFailExchange(0) = %g", got)
	}
	if got := PFailExchange(1); got != 1 {
		t.Errorf("PFailExchange(1) = %g", got)
	}
	if got := PFailExchange(0.1); math.Abs(got-0.19) > 1e-12 {
		t.Errorf("PFailExchange(0.1) = %g, want 0.19", got)
	}
	if got := PFailBlast(0.01, 64); math.Abs(got-(1-math.Pow(0.99, 65))) > 1e-12 {
		t.Errorf("PFailBlast = %g", got)
	}
	// A blast is more fragile than a single exchange for the same pn.
	f := func(u uint16) bool {
		pn := float64(u) / (4 * 65536) // [0, 0.25)
		return PFailBlast(pn, 64) >= PFailExchange(pn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedTimesFlatRegion(t *testing.T) {
	// Figure 5's central claim: for pn in the typical local-network range
	// (1e-5..1e-4) the expected times are almost identical to the
	// error-free times, and blast ≪ stop-and-wait.
	t01 := 5900 * time.Microsecond // T0(1), Table 3
	t0d := 173 * time.Millisecond  // T0(64), Table 3
	d := 64
	for _, pn := range []float64{1e-5, 1e-4} {
		saw := ExpectedTimeStopAndWait(t01, 10*t01, d, pn)
		blast := ExpectedTimeBlast(t0d, t0d, d, pn)
		// "Almost identical to the error-free transmission time": within 2 %
		// (at pn=1e-4 the blast is 1.3 % above error-free — the very start
		// of Figure 5's knee, exactly as the paper describes).
		if stats.RelErr(float64(saw), float64(64)*float64(t01)) > 0.02 {
			t.Errorf("pn=%g: SAW expected %v far from error-free %v", pn, saw, 64*t01)
		}
		if stats.RelErr(float64(blast), float64(t0d)) > 0.02 {
			t.Errorf("pn=%g: blast expected %v far from error-free %v", pn, blast, t0d)
		}
		if float64(blast) > 0.5*float64(saw) {
			t.Errorf("pn=%g: blast %v not ≪ SAW %v", pn, blast, saw)
		}
	}
}

func TestExpectedTimesKnee(t *testing.T) {
	t0d := 173 * time.Millisecond
	d := 64
	// Expected time is increasing in pn and blows up as pc → 1.
	prev := time.Duration(0)
	for _, pn := range []float64{0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		e := ExpectedTimeBlast(t0d, t0d, d, pn)
		if e < prev {
			t.Fatalf("expected time not monotone at pn=%g", pn)
		}
		prev = e
	}
	// At pn = 1e-2 the knee is well underway: ≥ 1.5× error-free.
	if e := ExpectedTimeBlast(t0d, t0d, d, 1e-2); float64(e) < 1.5*float64(t0d) {
		t.Errorf("knee too shallow: %v", e)
	}
	// Degenerate pn=1: infinite expectation, reported as MaxInt64.
	if e := ExpectedTimeBlast(t0d, t0d, d, 1); e != time.Duration(math.MaxInt64) {
		t.Errorf("pn=1 should saturate, got %v", e)
	}
	if e := ExpectedTimeStopAndWait(t0d, t0d, d, 1); e != time.Duration(math.MaxInt64) {
		t.Errorf("SAW pn=1 should saturate, got %v", e)
	}
}

func TestLargerTimeoutCostsMore(t *testing.T) {
	t01 := 5900 * time.Microsecond
	d := 64
	pn := 1e-3
	small := ExpectedTimeStopAndWait(t01, 10*t01, d, pn)
	large := ExpectedTimeStopAndWait(t01, 100*t01, d, pn)
	if large <= small {
		t.Errorf("Tr=100·T0 (%v) should cost more than Tr=10·T0 (%v)", large, small)
	}
}

func TestStdDevFullNoNak(t *testing.T) {
	t0d := 173 * time.Millisecond
	d := 64
	if got := StdDevFullNoNak(t0d, t0d, d, 0); got != 0 {
		t.Errorf("σ at pn=0 should be 0, got %v", got)
	}
	if got := StdDevFullNoNak(t0d, t0d, d, 1); got != time.Duration(math.MaxInt64) {
		t.Errorf("σ at pn=1 should saturate, got %v", got)
	}
	// σ grows with Tr — the §3.2.1 conclusion that makes R1 unacceptable.
	s1 := StdDevFullNoNak(t0d, t0d, d, 1e-4)
	s10 := StdDevFullNoNak(t0d, 10*t0d, d, 1e-4)
	if s10 <= s1 {
		t.Errorf("σ(Tr=10·T0)=%v should exceed σ(Tr=T0)=%v", s10, s1)
	}
	// Hand check: pc = 1-(1-1e-4)^65 ≈ 6.48e-3;
	// σ = 2·T0·√pc/(1-pc) ≈ 2·173ms·0.0805 ≈ 28 ms.
	if s1 < 25*time.Millisecond || s1 > 31*time.Millisecond {
		t.Errorf("σ = %v, hand calculation says ≈ 28 ms", s1)
	}
}

func TestStdDevFullNakNearlyTimeoutFree(t *testing.T) {
	m := params.VKernel()
	t0d := TimeBlast(m, 64)
	tresp := ResponseLatency(m)
	d := 64
	pn := 1e-3
	// §3.2.2: with a NAK, σ is "all but independent from the retransmission
	// interval". The paper's approximation drops the lost-response mode
	// entirely; the exact mixture keeps a weak (√) residual dependence — a
	// 10× increase in Tr raises σ by ≈2×, versus 5.5× without the NAK.
	sSmall := StdDevFullNak(t0d, t0d, tresp, d, pn)
	sLarge := StdDevFullNak(t0d, 10*t0d, tresp, d, pn)
	ratio := float64(sLarge) / float64(sSmall)
	if ratio > 2.5 {
		t.Errorf("σ ratio across 10× Tr = %.2f; NAK should largely decouple σ from Tr", ratio)
	}
	noNakRatio := float64(StdDevFullNoNak(t0d, 10*t0d, d, pn)) / float64(StdDevFullNoNak(t0d, t0d, d, pn))
	if ratio >= noNakRatio {
		t.Errorf("NAK ratio %.2f should be far below no-NAK ratio %.2f", ratio, noNakRatio)
	}
	// And the NAK strategy must beat no-NAK dramatically at realistic Tr.
	noNak := StdDevFullNoNak(t0d, 10*t0d, d, pn)
	if float64(sLarge) > 0.5*float64(noNak) {
		t.Errorf("NAK σ=%v vs no-NAK σ=%v: expected drastic reduction", sLarge, noNak)
	}
	// Edge cases.
	if got := StdDevFullNak(t0d, t0d, tresp, d, 0); got != 0 {
		t.Errorf("σ at pn=0 = %v", got)
	}
	if got := StdDevFullNak(t0d, t0d, tresp, d, 1); got != time.Duration(math.MaxInt64) {
		t.Errorf("σ at pn=1 = %v", got)
	}
}

func TestFullNakModes(t *testing.T) {
	d := 64
	for _, pn := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		pNak, pSilent := FullNakModes(pn, d)
		if pNak < 0 || pSilent < 0 {
			t.Fatalf("negative mode probability at pn=%g", pn)
		}
		if got, want := pNak+pSilent, PFailBlast(pn, d); math.Abs(got-want) > 1e-12 {
			t.Errorf("pn=%g: modes sum to %g, want %g", pn, got, want)
		}
		// For small pn most failures are NAK-reported (D-1 of D+1 packets
		// are unreliable data).
		if pn <= 1e-3 && pNak < pSilent {
			t.Errorf("pn=%g: pNak=%g < pSilent=%g", pn, pNak, pSilent)
		}
	}
}

func TestExpectedTimeFullNakBeatsTimeoutOnly(t *testing.T) {
	m := params.VKernel()
	t0d := TimeBlast(m, 64)
	tresp := ResponseLatency(m)
	pn := 1e-2
	withNak := ExpectedTimeFullNak(t0d, 10*t0d, tresp, 64, pn)
	noNak := ExpectedTimeBlast(t0d, 10*t0d, 64, pn)
	if withNak >= noNak {
		t.Errorf("NAK expected time %v should beat timeout-only %v", withNak, noNak)
	}
	if got := ExpectedTimeFullNak(t0d, t0d, tresp, 64, 0); got != t0d {
		t.Errorf("pn=0 expected time = %v, want %v", got, t0d)
	}
	if got := ExpectedTimeFullNak(t0d, t0d, tresp, 64, 1); got != time.Duration(math.MaxInt64) {
		t.Errorf("pn=1 expected time = %v", got)
	}
}

func TestResponseLatency(t *testing.T) {
	m := params.Standalone3Com()
	want := m.C() + 2*m.Ca() + m.Ta() + 2*m.Propagation
	if got := ResponseLatency(m); got != want {
		t.Errorf("ResponseLatency = %v, want %v", got, want)
	}
}
