package analytic

import (
	"math"
	"testing"
	"time"

	"blastlan/internal/params"
)

func TestWindowsPartition(t *testing.T) {
	cases := []struct {
		n, w int
		want []int
	}{
		{64, 0, []int{64}},
		{64, 64, []int{64}},
		{64, 100, []int{64}},
		{64, 16, []int{16, 16, 16, 16}},
		{70, 32, []int{32, 32, 6}},
		{1, 16, []int{1}},
	}
	for _, c := range cases {
		got := windows(c.n, c.w)
		if len(got) != len(c.want) {
			t.Fatalf("windows(%d,%d) = %v", c.n, c.w, got)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("windows(%d,%d) = %v, want %v", c.n, c.w, got, c.want)
			}
			sum += got[i]
		}
		if sum != c.n {
			t.Fatalf("windows(%d,%d) sums to %d", c.n, c.w, sum)
		}
	}
}

func TestTimeMultiblastErrorFree(t *testing.T) {
	m := params.VKernel()
	// Single blast == TimeBlast.
	if got, want := TimeMultiblast(m, 64, 0), TimeBlast(m, 64); got != want {
		t.Errorf("single blast: %v vs %v", got, want)
	}
	// k windows cost exactly (k-1) extra ack exchanges.
	k := 4
	extra := time.Duration(k-1) * (m.C() + 2*m.Ca() + m.Ta())
	if got, want := TimeMultiblast(m, 64, 16), TimeBlast(m, 64)+extra; got != want {
		t.Errorf("4 windows: %v vs %v", got, want)
	}
	// Error-free, smaller windows always cost more.
	prev := TimeMultiblast(m, 256, 0)
	for _, w := range []int{256, 128, 64, 32, 16} {
		cur := TimeMultiblast(m, 256, w)
		if cur < prev {
			t.Errorf("w=%d cheaper than larger window: %v < %v", w, cur, prev)
		}
		prev = cur
	}
}

func TestExpectedTimeMultiblastCrossover(t *testing.T) {
	m := params.VKernel()
	n := 1024 // the 1 MB dump
	tr := TimeBlast(m, n) / 4
	// Error-free: single blast wins.
	if OptimalWindow(m, n, tr, 0, []int{16, 64, 256, 0}) != 0 {
		t.Error("with pn=0 the single blast must win")
	}
	// Lossy: a bounded window must win — §3.1.3's whole point.
	best := OptimalWindow(m, n, tr, 2e-3, []int{16, 64, 256, 0})
	if best == 0 {
		t.Error("at pn=2e-3 a 1024-packet single blast cannot be optimal")
	}
	// Expectation is monotone in pn for every window.
	for _, w := range []int{0, 64} {
		prev := time.Duration(0)
		for _, pn := range []float64{0, 1e-4, 1e-3, 1e-2} {
			e := ExpectedTimeMultiblast(m, n, w, tr, pn)
			if e < prev {
				t.Errorf("w=%d: expectation not monotone at pn=%g", w, pn)
			}
			prev = e
		}
	}
	// Degenerate loss saturates.
	if ExpectedTimeMultiblast(m, n, 64, tr, 1) != time.Duration(math.MaxInt64) {
		t.Error("pn=1 should saturate")
	}
}

func TestStdDevMultiblast(t *testing.T) {
	m := params.VKernel()
	tr := TimeBlast(m, 64)
	// Variances add: k independent equal windows give σ·√k of one window.
	one := float64(StdDevFullNoNak(TimeBlast(m, 16), tr, 16, 1e-3))
	four := float64(StdDevMultiblast(m, 64, 16, tr, 1e-3))
	if rel := math.Abs(four-one*2) / (one * 2); rel > 1e-9 {
		t.Errorf("σ(4 windows) = %g, want 2·σ(1 window) = %g", four, one*2)
	}
	if StdDevMultiblast(m, 64, 16, tr, 1) != time.Duration(math.MaxInt64) {
		t.Error("pn=1 should saturate")
	}
	// Bounded windows cut σ at realistic loss: σ grows superlinearly in
	// window size through p_c.
	big := StdDevMultiblast(m, 1024, 0, tr, 1e-3)
	small := StdDevMultiblast(m, 1024, 64, tr, 1e-3)
	if small >= big {
		t.Errorf("σ(w=64) = %v should beat σ(single) = %v", small, big)
	}
}
