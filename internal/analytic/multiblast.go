package analytic

import (
	"math"
	"time"

	"blastlan/internal/params"
)

// Multiblast models (§3.1.3): a transfer of n packets split into blasts of
// at most w packets, each blast individually acknowledged before the next
// begins. These closed forms cover the full-retransmission-on-timeout
// strategy (the §3.1.2 analysis applied per window); partial and selective
// window recovery is evaluated by simulation like the paper does.

// windows returns the per-blast packet counts for n packets with window w
// (w <= 0 means a single blast).
func windows(n, w int) []int {
	if w <= 0 || w >= n {
		return []int{n}
	}
	var out []int
	for n > 0 {
		k := w
		if n < w {
			k = n
		}
		out = append(out, k)
		n -= k
	}
	return out
}

// TimeMultiblast returns the error-free elapsed time of a multiblast
// transfer: every packet still costs C+T once, and every window adds one
// acknowledgement exchange —
//
//	T = N·(C+T) + k·(C + 2Ca + Ta)   for k windows.
func TimeMultiblast(m params.CostModel, n, w int) time.Duration {
	var total time.Duration
	for _, k := range windows(n, w) {
		total += TimeBlast(m, k)
	}
	return total
}

// ExpectedTimeMultiblast returns the expected elapsed time under
// independent per-packet loss pn when every window uses full
// retransmission on timeout with interval tr: windows are independent, so
// expectations add.
func ExpectedTimeMultiblast(m params.CostModel, n, w int, tr time.Duration, pn float64) time.Duration {
	var total float64
	for _, k := range windows(n, w) {
		e := ExpectedTimeBlast(TimeBlast(m, k), tr, k, pn)
		if e == time.Duration(math.MaxInt64) {
			return e
		}
		total += float64(e)
	}
	if total > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(total)
}

// StdDevMultiblast returns the standard deviation of the same model:
// window times are independent, so variances add.
func StdDevMultiblast(m params.CostModel, n, w int, tr time.Duration, pn float64) time.Duration {
	var varSum float64
	for _, k := range windows(n, w) {
		s := StdDevFullNoNak(TimeBlast(m, k), tr, k, pn)
		if s == time.Duration(math.MaxInt64) {
			return s
		}
		varSum += float64(s) * float64(s)
	}
	return time.Duration(math.Sqrt(varSum))
}

// OptimalWindow returns the window (among candidates) minimising the
// expected multiblast time for the given loss rate — the quantitative form
// of §3.1.3's advice. With pn = 0 the single blast always wins (no extra
// acks); as pn grows the optimum shrinks.
func OptimalWindow(m params.CostModel, n int, tr time.Duration, pn float64, candidates []int) int {
	best := 0
	bestT := time.Duration(math.MaxInt64)
	for _, w := range candidates {
		if t := ExpectedTimeMultiblast(m, n, w, tr, pn); t < bestT {
			bestT = t
			best = w
		}
	}
	return best
}
