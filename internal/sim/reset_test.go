package sim

import (
	"testing"
	"time"
)

// TestKernelReset reuses one kernel across runs: pending (including
// cancelled) events are discarded, the clock rewinds, and a second
// simulation executes exactly like one on a fresh kernel.
func TestKernelReset(t *testing.T) {
	k := NewKernel()
	var fired int
	k.After(time.Millisecond, func() { fired++ })
	stale := k.After(time.Hour, func() { t.Error("discarded event fired") })
	k.After(2*time.Millisecond, func() {
		// leave one cancelled and one pending event behind
	})
	_ = stale
	// Abandon the run midway: fire only the first event.
	if more, err := k.Step(); !more || err != nil {
		t.Fatalf("step: more=%v err=%v", more, err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}

	k.Reset()
	if k.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", k.Now())
	}

	// A full process run on the reused kernel behaves like a fresh one.
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

// TestTimerCancelAfterRecycle checks the generation guard: a Timer whose
// event has fired and been recycled must not cancel the event record's next
// incarnation.
func TestTimerCancelAfterRecycle(t *testing.T) {
	k := NewKernel()
	var stale Timer
	secondFired := false
	stale = k.After(time.Millisecond, func() {})
	k.After(2*time.Millisecond, func() {
		// The first event has fired and its record is back in the pool; the
		// next schedule reuses it.
		tm := k.After(time.Millisecond, func() { secondFired = true })
		if tm.ev != stale.ev {
			// Pool handed out a different record; force the scenario by
			// cancelling anyway — the guard must still be a no-op for the
			// live event.
			t.Logf("pool reuse not observed (got %p want %p)", tm.ev, stale.ev)
		}
		stale.Cancel()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Fatal("stale Timer.Cancel killed a recycled event")
	}
}
