package sim

import (
	"time"

	"blastlan/internal/wire"
)

// MediumMode selects how stations arbitrate the shared medium.
type MediumMode int

const (
	// MediumFIFO serialises transmissions in arrival order: an adequate
	// stand-in for CSMA/CD deferral between two stations under the paper's
	// low-load conditions (contention "all but absent", §1).
	MediumFIFO MediumMode = iota
	// MediumCSMACD models 1-persistent CSMA/CD with collisions and binary
	// exponential backoff among stations that queued while the medium was
	// busy (IEEE 802.3 parameters scaled to the configured bandwidth).
	// This powers the beyond-the-paper load study: the paper's conclusions
	// are explicitly "valid only under low load conditions", and this mode
	// quantifies what happens outside them.
	MediumCSMACD
)

// 802.3 timing constants in bit times, scaled by the link bandwidth.
const (
	slotBits       = 512 // collision window / backoff quantum
	jamBits        = 48  // jam + abort overhead after a collision
	interFrameBits = 96  // inter-frame gap
	maxBackoffExp  = 10  // backoff caps at 2^10 slots
	maxAttempts    = 16  // excessive collisions: drop the frame
)

// bitTime converts a count of bit times to a duration on this network.
func (n *Network) bitTime(bits int64) time.Duration {
	return time.Duration(bits * int64(time.Second) / n.Cost.BandwidthBitsPerSec)
}

// csmaEnqueue handles a transmit attempt in CSMA/CD mode: transmit
// immediately if the medium is idle, otherwise defer (1-persistent).
//
// Simplification, documented: staggered arrivals on an idle medium never
// collide (the real vulnerable window is one propagation delay, ~10 µs);
// collisions happen among stations that deferred behind the same busy
// period and therefore restart simultaneously. Under low load this
// degenerates to exactly the FIFO behaviour, preserving the paper's
// error-free numbers; under high load it produces the familiar collision
// and backoff dynamics.
func (n *Network) csmaEnqueue(job *txJob) {
	if n.mediumBusy {
		n.mediumQ = append(n.mediumQ, job)
		return
	}
	n.csmaTransmit(job)
}

// csmaTransmit puts one frame on the wire and arbitrates the next.
func (n *Network) csmaTransmit(job *txJob) {
	n.mediumBusy = true
	k := n.K
	size := job.pkt.WireSize()
	wireTime := n.Cost.WireTime(size)
	start := k.Now()
	k.After(wireTime, func() {
		n.span("net", LaneWire, typeLabel(job.pkt), start, k.Now())
		pkt := job.pkt
		from, to := job.from, job.to
		k.After(n.Cost.Propagation, func() { n.deliver(from, to, pkt) })
		n.finishTx(job)
		// The medium stays seized for the inter-frame gap, then the
		// deferred stations contend.
		k.After(n.bitTime(interFrameBits), func() {
			n.mediumBusy = false
			n.csmaResolve()
		})
	})
}

// csmaResolve lets the deferred stations contend for the idle medium.
func (n *Network) csmaResolve() {
	switch len(n.mediumQ) {
	case 0:
		return
	case 1:
		job := n.mediumQ[0]
		n.mediumQ = n.mediumQ[:0]
		n.csmaTransmit(job)
		return
	}
	// Two or more 1-persistent stations start together: collision. Every
	// participant jams, aborts, and backs off 0..2^min(c,10)-1 slots.
	colliders := append([]*txJob(nil), n.mediumQ...)
	n.mediumQ = n.mediumQ[:0]
	n.Collisions++
	n.mediumBusy = true
	k := n.K
	jam := n.bitTime(jamBits)
	k.After(jam, func() {
		n.mediumBusy = false
		for _, job := range colliders {
			job.attempts++
			if job.attempts >= maxAttempts {
				// Excessive collisions: the interface gives up on the
				// frame — a wire-level loss the protocols must recover.
				job.to.Counters.WireDrops++
				n.ExcessiveCollisions++
				n.finishTx(job)
				continue
			}
			exp := job.attempts
			if exp > maxBackoffExp {
				exp = maxBackoffExp
			}
			slots := n.rng.Intn(1 << exp)
			job := job
			k.After(time.Duration(slots)*n.bitTime(slotBits), func() {
				n.csmaEnqueue(job)
			})
		}
		// Frames that arrived during the jam contend next.
		n.csmaResolve()
	})
}

// finishTx releases the sender-side resources of a completed (or abandoned)
// transmission attempt. Detached jobs (background traffic) own no buffer.
func (n *Network) finishTx(job *txJob) {
	if job.done {
		return
	}
	job.done = true
	if job.detached {
		return
	}
	job.from.txFree++
	job.from.txSig.Broadcast(n.K)
	job.sig.Broadcast(n.K)
}

// AddLoadGenerator injects background traffic: fixed-size frames from src
// to dst with exponentially distributed inter-arrival times targeting the
// given offered load (fraction of the link bandwidth). The destination
// should be a sink station (SetSink), so background frames never occupy
// protocol receive buffers. Background generators bypass the host CPU
// model: they stand in for *other machines'* traffic, which only contends
// for the wire.
func (n *Network) AddLoadGenerator(src, dst *Station, offeredLoad float64, frameBytes int) {
	if offeredLoad <= 0 {
		return
	}
	frameTime := n.Cost.WireTime(frameBytes)
	mean := time.Duration(float64(frameTime) / offeredLoad)
	var next func()
	seq := uint32(0)
	next = func() {
		// Exponential inter-arrival, seeded from the network RNG.
		gap := time.Duration(n.rng.ExpFloat64() * float64(mean))
		n.K.After(gap, func() {
			seq++
			src.Counters.TxPackets++
			src.Counters.TxBytes += int64(frameBytes)
			job := n.getJob(src, dst,
				&wire.Packet{Type: wire.TypeData, Trans: backgroundTransferID, Seq: seq, VirtualSize: frameBytes})
			job.detached = true
			n.enqueueTx(job)
			next()
		})
	}
	next()
}

// backgroundTransferID tags load-generator frames; protocol code never uses
// this transfer id, and sink stations discard the frames on delivery.
const backgroundTransferID = 0xBAC46F0A
