package sim

import (
	"testing"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Under no contention, CSMA/CD must produce exactly the same timing as the
// FIFO medium — the property that keeps the paper's error-free numbers
// valid in either mode.
func TestCSMAUncontendedMatchesFIFO(t *testing.T) {
	run := func(mode MediumMode) time.Duration {
		k := NewKernel()
		n, err := NewNetwork(k, params.Standalone3Com(), params.NoLoss(), 1)
		if err != nil {
			t.Fatal(err)
		}
		n.Medium = mode
		src, dst := n.AddStation("src"), n.AddStation("dst")
		var done time.Duration
		k.Go("sender", func(p *Proc) {
			for i := 0; i < 8; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
			}
			done = p.Now()
		})
		k.Go("receiver", func(p *Proc) {
			for i := 0; i < 8; i++ {
				dst.Recv(p, -1)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if n.Collisions != 0 && mode == MediumCSMACD {
			t.Fatalf("uncontended run collided %d times", n.Collisions)
		}
		return done
	}
	fifo := run(MediumFIFO)
	csma := run(MediumCSMACD)
	// CSMA adds only the 9.6 µs inter-frame gaps between back-to-back
	// frames; with the serial sender (cycle C+T > T+ifg) even those vanish.
	if diff := csma - fifo; diff < 0 || diff > 100*time.Microsecond {
		t.Errorf("uncontended CSMA %v vs FIFO %v", csma, fifo)
	}
}

// Two stations that defer behind the same busy period must collide, back
// off, and both eventually deliver.
func TestCSMACollisionAndRecovery(t *testing.T) {
	k := NewKernel()
	n, err := NewNetwork(k, params.Standalone3Com(), params.NoLoss(), 3)
	if err != nil {
		t.Fatal(err)
	}
	n.Medium = MediumCSMACD
	a := n.AddStation("a")
	b := n.AddStation("b")
	c := n.AddStation("c")
	sink := n.AddStation("sink")
	sink.SetSink()

	// a seizes the medium first; b and c queue behind it and restart
	// together when it goes idle → collision.
	k.Go("a", func(p *Proc) { a.Send(p, sink, dataPkt(1)) })
	k.Go("b", func(p *Proc) {
		p.Sleep(100 * time.Microsecond) // arrive while a transmits
		b.Send(p, sink, dataPkt(2))
	})
	k.Go("c", func(p *Proc) {
		p.Sleep(120 * time.Microsecond)
		c.Send(p, sink, dataPkt(3))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Collisions == 0 {
		t.Error("expected at least one collision")
	}
	if sink.Counters.RxPackets != 3 {
		t.Errorf("delivered %d of 3 frames", sink.Counters.RxPackets)
	}
}

// Background load slows a foreground transfer down, monotonically in the
// offered load — the beyond-the-paper contention study.
func TestLoadGeneratorContention(t *testing.T) {
	elapsed := func(load float64) time.Duration {
		k := NewKernel()
		n, err := NewNetwork(k, params.Standalone3Com(), params.NoLoss(), 5)
		if err != nil {
			t.Fatal(err)
		}
		n.Medium = MediumCSMACD
		src, dst := n.AddStation("src"), n.AddStation("dst")
		bg := n.AddStation("bg")
		sink := n.AddStation("sink")
		sink.SetSink()
		n.AddLoadGenerator(bg, sink, load, 1024)

		var done time.Duration
		const pkts = 16
		k.Go("sender", func(p *Proc) {
			for i := 0; i < pkts; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
			}
			done = p.Now()
		})
		k.Go("receiver", func(p *Proc) {
			for i := 0; i < pkts; i++ {
				if _, err := dst.Recv(p, 5*time.Second); err != nil {
					t.Error(err)
					return
				}
			}
		})
		// The generator never lets the event heap drain, so drive the
		// kernel step by step until the foreground transfer completes.
		if err := runUntilSettled(k, &done); err != nil {
			t.Fatal(err)
		}
		if done == 0 {
			t.Fatal("transfer never completed under load")
		}
		return done
	}
	base := elapsed(0)
	mid := elapsed(0.3)
	high := elapsed(0.7)
	if !(base < mid && mid < high) {
		t.Errorf("elapsed not monotone in load: %v %v %v", base, mid, high)
	}
	// Low load barely hurts (the paper's operating assumption).
	if float64(mid) > 1.6*float64(base) {
		t.Errorf("30%% load tripled the transfer? %v vs %v", mid, base)
	}
}

// runUntilSettled drives the kernel until the foreground measurement is
// taken, then stops; infinite background generators otherwise keep the
// event heap non-empty forever.
func runUntilSettled(k *Kernel, done *time.Duration) error {
	for i := 0; i < 5_000_000; i++ {
		more, err := k.Step()
		if err != nil {
			return err
		}
		if *done != 0 || !more {
			return nil
		}
	}
	return nil
}

// Excessive collisions must surface as wire drops, not hangs.
func TestExcessiveCollisionsDrop(t *testing.T) {
	k := NewKernel()
	n, err := NewNetwork(k, params.Standalone3Com(), params.NoLoss(), 7)
	if err != nil {
		t.Fatal(err)
	}
	n.Medium = MediumCSMACD
	// Force perpetual collisions: the rng can't save stations that always
	// pick slot 0 — so instead verify the counter plumbing by checking the
	// attempts path with many contenders, which makes ≥1 excessive drop
	// plausible but not guaranteed; assert only consistency.
	stations := make([]*Station, 6)
	sink := n.AddStation("sink")
	sink.SetSink()
	for i := range stations {
		stations[i] = n.AddStation(string(rune('a' + i)))
	}
	for i, s := range stations {
		s := s
		i := i
		k.Go(s.Name, func(p *Proc) {
			p.Sleep(time.Duration(i) * 10 * time.Microsecond)
			for j := 0; j < 10; j++ {
				s.Send(p, sink, dataPkt(uint32(j)))
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	delivered := sink.Counters.RxPackets
	dropped := sink.Counters.WireDrops
	if delivered+dropped != 60 {
		t.Errorf("delivered %d + dropped %d != 60", delivered, dropped)
	}
	if n.Collisions == 0 {
		t.Error("six contenders should collide")
	}
}

func TestBackgroundPacketsTagged(t *testing.T) {
	p := &wire.Packet{Trans: backgroundTransferID}
	if p.Trans != 0xBAC46F0A {
		t.Error("background tag changed; update protocol filters if intentional")
	}
}
