// Package sim is a deterministic, process-based discrete-event simulator.
//
// It exists to stand in for the paper's hardware testbed (two SUN
// workstations on an idle 10 Mb/s Ethernet): simulated "processes" are
// goroutine coroutines that execute the paper's busy-wait protocol programs
// in virtual time, charging CPU time for packet copies, occupying a
// half-duplex medium for transmissions, and suffering seeded packet loss.
//
// Scheduling is strictly sequential: the kernel resumes exactly one process
// at a time and waits for it to block again before advancing the clock, so
// a given seed always produces an identical execution. Events at equal
// times fire in schedule order.
//
// The kernel is built for cheap mass replay: event records live on a
// per-kernel free list, the Sleep/Wait/handoff hot path schedules typed
// resume events instead of allocating closures, and Reset rewinds a kernel
// to time zero so one kernel (with its warmed pools and handoff channel)
// can serve thousands of trials.
package sim

import (
	"fmt"
	"time"
)

// Kernel is the event loop and virtual clock. Create one with NewKernel,
// spawn processes with Go, then call Run.
type Kernel struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	yielded chan struct{}
	live    int // non-daemon processes that have not finished
	failure error

	freeEvents  []*event
	freeWaiters []*svwaiter
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yielded: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Reset rewinds the kernel to time zero with an empty event heap so it can
// run another simulation, keeping its handoff channel and its event and
// waiter pools warm. Pending events are discarded into the pool.
//
// The previous run must have quiesced: every spawned process has returned
// (Run completed without daemons still blocked). A process left blocked at
// Reset time is orphaned — its goroutine parks forever, since the events
// that would resume it are discarded.
func (k *Kernel) Reset() {
	for k.events.len() > 0 {
		k.recycle(k.events.pop())
	}
	k.now = 0
	k.seq = 0
	k.live = 0
	k.failure = nil
}

// eventKind discriminates the typed events the kernel dispatches without a
// closure allocation. evFunc remains the general case for cold paths.
type eventKind uint8

const (
	// evFunc runs an arbitrary callback.
	evFunc eventKind = iota
	// evResume hands control to a blocked process (Sleep, Broadcast).
	evResume
	// evWaitTimeout expires a Signal wait.
	evWaitTimeout
	// evTxDone marks a FIFO-medium transmission leaving the wire.
	evTxDone
	// evDeliver delivers a transmitted packet after propagation.
	evDeliver
)

// event is a scheduled occurrence. Events are pooled: gen increments on
// every recycle so stale Timer handles cannot cancel an unrelated reuse.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint32
	kind      eventKind
	cancelled bool
	timedOut  bool

	fire   func()    // evFunc
	proc   *Proc     // evResume
	waiter *svwaiter // evWaitTimeout
	job    *txJob    // evTxDone, evDeliver
}

// Timer is a handle for a scheduled event that may be cancelled. The zero
// Timer is valid and cancels nothing.
type Timer struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from firing. Safe to call multiple times, after
// the event has fired, and on the zero Timer.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.cancelled = true
	}
}

// newEvent takes an event record from the pool (or allocates one), stamps it
// with the schedule ordering keys and pushes it on the heap. at is clamped
// to now.
func (k *Kernel) newEvent(at time.Duration, kind eventKind) *event {
	var ev *event
	if n := len(k.freeEvents); n > 0 {
		ev = k.freeEvents[n-1]
		k.freeEvents[n-1] = nil
		k.freeEvents = k.freeEvents[:n-1]
	} else {
		ev = &event{}
	}
	if at < k.now {
		at = k.now
	}
	ev.at = at
	ev.seq = k.seq
	ev.kind = kind
	k.seq++
	k.events.push(ev)
	return ev
}

// recycle clears a fired or discarded event and returns it to the pool,
// invalidating outstanding Timer handles via the generation counter.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.cancelled = false
	ev.timedOut = false
	ev.fire = nil
	ev.proc = nil
	ev.waiter = nil
	ev.job = nil
	k.freeEvents = append(k.freeEvents, ev)
}

// dispatch fires one event in kernel context.
func (k *Kernel) dispatch(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fire()
	case evResume:
		k.handoff(ev.proc, wake{timedOut: ev.timedOut})
	case evWaitTimeout:
		w := ev.waiter
		if w.woken {
			return
		}
		w.woken = true
		w.sig.remove(w)
		k.handoff(w.p, wake{timedOut: true})
	case evTxDone:
		ev.job.from.net.txDone(ev.job)
	case evDeliver:
		job := ev.job
		n := job.from.net
		if job.to == nil {
			n.deliverBroadcast(job.from, job.pkt)
		} else {
			n.deliver(job.from, job.to, job.pkt)
		}
		n.putJob(job)
	}
}

// Schedule registers fire to run at absolute virtual time at (clamped to
// now). It may be called from process context or from event callbacks.
func (k *Kernel) Schedule(at time.Duration, fire func()) Timer {
	ev := k.newEvent(at, evFunc)
	ev.fire = fire
	return Timer{ev: ev, gen: ev.gen}
}

// After registers fire to run d from now.
func (k *Kernel) After(d time.Duration, fire func()) Timer {
	return k.Schedule(k.now+d, fire)
}

// Run drives the simulation until no events remain, then reports an error
// if non-daemon processes are still blocked (deadlock) or a process
// panicked.
func (k *Kernel) Run() error {
	for k.events.len() > 0 && k.failure == nil {
		ev := k.events.pop()
		if ev.cancelled {
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		k.dispatch(ev)
		k.recycle(ev)
	}
	if k.failure != nil {
		return k.failure
	}
	if k.live > 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", k.live, k.now)
	}
	return nil
}

// Step processes the next pending event. It reports whether an event was
// processed (false means the heap is empty) and any recorded failure.
// Callers use it to drive simulations containing unbounded background
// activity — load generators never let the event heap drain, so Run would
// never return.
func (k *Kernel) Step() (bool, error) {
	for k.events.len() > 0 {
		if k.failure != nil {
			return false, k.failure
		}
		ev := k.events.pop()
		if ev.cancelled {
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		k.dispatch(ev)
		k.recycle(ev)
		return true, k.failure
	}
	return false, k.failure
}

// fail records a fatal simulation error; Run returns it after the current
// event completes.
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}

// wake carries the reason a process was resumed.
type wake struct{ timedOut bool }

// Proc is a simulated process. All Proc methods must be called from the
// process's own goroutine (i.e. inside the function passed to Go).
type Proc struct {
	k      *Kernel
	name   string
	resume chan wake
	daemon bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Go spawns a process that begins executing at the current virtual time.
func (k *Kernel) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan wake)}
	k.live++
	k.Schedule(k.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					k.fail(fmt.Errorf("sim: process %q panicked: %v", name, r))
				}
				if !p.daemon {
					k.live--
				}
				k.yielded <- struct{}{}
			}()
			fn(p)
		}()
		<-k.yielded
	})
	return p
}

// Daemon marks the process as a background service: Run will not consider it
// for deadlock detection when it remains blocked after all work completes.
func (p *Proc) Daemon() {
	if !p.daemon {
		p.daemon = true
		p.k.live--
	}
}

// handoff transfers control to p and waits until it blocks or finishes.
// Must only be called from kernel context (event callbacks).
func (k *Kernel) handoff(p *Proc, w wake) {
	p.resume <- w
	<-k.yielded
}

// yield returns control to the kernel and blocks until resumed.
func (p *Proc) yield() wake {
	p.k.yielded <- struct{}{}
	return <-p.resume
}

// Sleep advances the process by d of busy virtual time (modelling CPU work
// or waiting); other processes run meanwhile. The resume is a pooled typed
// event: sleeping allocates nothing in steady state.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	ev := k.newEvent(k.now+d, evResume)
	ev.proc = p
	p.yield()
}

// Signal is a broadcast condition variable in virtual time. The zero value
// is ready to use. It must only be touched from kernel or process context
// of a single kernel.
type Signal struct {
	waiters []*svwaiter
}

type svwaiter struct {
	p     *Proc
	sig   *Signal
	woken bool
	timer Timer
}

// getWaiter takes a waiter record from the pool.
func (k *Kernel) getWaiter() *svwaiter {
	if n := len(k.freeWaiters); n > 0 {
		w := k.freeWaiters[n-1]
		k.freeWaiters[n-1] = nil
		k.freeWaiters = k.freeWaiters[:n-1]
		return w
	}
	return &svwaiter{}
}

// putWaiter clears a finished waiter and returns it to the pool. Safe once
// the wait has resolved: by then its timeout event has fired or been
// cancelled, so no live event references it (a cancelled event still in the
// heap is discarded without touching its waiter).
func (k *Kernel) putWaiter(w *svwaiter) {
	w.p = nil
	w.sig = nil
	w.woken = false
	w.timer = Timer{}
	k.freeWaiters = append(k.freeWaiters, w)
}

// Wait blocks the process until the signal is broadcast or timeout elapses
// (timeout < 0 waits forever). It reports whether the wait timed out.
func (p *Proc) Wait(s *Signal, timeout time.Duration) (timedOut bool) {
	k := p.k
	w := k.getWaiter()
	w.p = p
	w.sig = s
	s.waiters = append(s.waiters, w)
	if timeout >= 0 {
		ev := k.newEvent(k.now+timeout, evWaitTimeout)
		ev.waiter = w
		w.timer = Timer{ev: ev, gen: ev.gen}
	}
	timedOut = p.yield().timedOut
	k.putWaiter(w)
	return timedOut
}

// WaitCond blocks until cond() holds, rechecking on every broadcast of s.
// deadline is an absolute virtual time; negative means no deadline. It
// reports whether cond() held when it returned (false means the deadline
// passed first).
func (p *Proc) WaitCond(s *Signal, deadline time.Duration, cond func() bool) bool {
	for !cond() {
		timeout := time.Duration(-1)
		if deadline >= 0 {
			timeout = deadline - p.k.now
			if timeout < 0 {
				return false
			}
		}
		if p.Wait(s, timeout) {
			return cond()
		}
	}
	return true
}

// Broadcast wakes every current waiter. New waiters arriving after the call
// are unaffected. Wakeups are scheduled at the current time in FIFO order.
func (s *Signal) Broadcast(k *Kernel) {
	for _, w := range s.waiters {
		if w.woken {
			continue
		}
		w.woken = true
		w.timer.Cancel()
		ev := k.newEvent(k.now, evResume)
		ev.proc = w.p
	}
	s.waiters = s.waiters[:0]
}

func (s *Signal) remove(w *svwaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap struct{ xs []*event }

func (h *eventHeap) len() int { return len(h.xs) }

func (h *eventHeap) less(i, j int) bool {
	if h.xs[i].at != h.xs[j].at {
		return h.xs[i].at < h.xs[j].at
	}
	return h.xs[i].seq < h.xs[j].seq
}

func (h *eventHeap) push(ev *event) {
	h.xs = append(h.xs, ev)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.xs[i], h.xs[parent] = h.xs[parent], h.xs[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs[last] = nil
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.xs) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.xs) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.xs[i], h.xs[smallest] = h.xs[smallest], h.xs[i]
		i = smallest
	}
	return top
}
