package sim

import (
	"fmt"
	"net"
	"os"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/ether"
	"blastlan/internal/transport"
	"blastlan/internal/wire"
)

// This file adapts the simulator to the substrate interfaces of
// internal/transport, so the shared session layer (internal/session) serves
// many simulated clients exactly as it serves real UDP peers: the demux
// loop runs as one simulated process reading the serving station's
// interface, each admitted session becomes its own process, and the striped
// client fan-out spawns one process per stripe. Everything stays under the
// kernel's handoff scheduling, so a sharded many-client server is
// deterministic bit for bit — the property the scale scenarios
// (simrun.LoadScenario) and the server-side conformance suite rely on.

// Listener implements transport.Listener over one serving station: Accept
// is a source-tagged receive on the station's interface, demux keys are the
// transmitting stations' interface addresses, and session bodies run as
// kernel processes. Create it inside the demux process (see Serve).
type Listener struct {
	n  *Network
	st *Station
	p  *Proc

	keybuf ether.Addr
	last   *Station

	spawned  int
	finished int
	done     Signal
}

// NewListener binds a listener to the serving station and the process that
// will drive its demux loop.
func NewListener(n *Network, st *Station, p *Proc) *Listener {
	return &Listener{n: n, st: st, p: p}
}

// Serve spawns a server process on st and hands run a listener bound to it;
// run typically calls (*session.Server).Run. The returned process completes
// when run returns.
func Serve(n *Network, st *Station, run func(l *Listener)) *Proc {
	return n.K.Go("serve:"+st.Name, func(p *Proc) {
		run(NewListener(n, st, p))
	})
}

// Accept waits up to idle (<= 0: forever) for the next arrival on the
// serving station, from any source.
func (l *Listener) Accept(idle time.Duration) (transport.Inbound, error) {
	timeout := time.Duration(-1)
	if idle > 0 {
		timeout = idle
	}
	pkt, from, err := l.st.RecvFrom(l.p, timeout)
	if err != nil {
		return transport.Inbound{}, err
	}
	l.last = from
	l.keybuf = from.Addr
	return transport.Inbound{Key: l.keybuf[:], Msg: pkt}, nil
}

// ReqOf decodes a simulated arrival as a session-opening request.
func (l *Listener) ReqOf(msg transport.Message) (wire.Req, bool) {
	pkt, ok := msg.(*wire.Packet)
	if !ok || pkt.Type != wire.TypeReq {
		return wire.Req{}, false
	}
	req, err := wire.DecodeReq(pkt.Payload)
	if err != nil {
		return wire.Req{}, false
	}
	return req, true
}

// Open creates the session conn for the source of the most recent Accept.
func (l *Listener) Open() (transport.Conn, transport.Peer, error) {
	if l.last == nil {
		return nil, nil, fmt.Errorf("sim: no arrival to open a session for")
	}
	return &serverConn{l: l, peer: l.last}, l.last, nil
}

// ReplyBusy sends a best-effort BUSY/RETRY-AFTER refusal to the source of
// the most recent Accept (transport.BusyReplier).
func (l *Listener) ReplyBusy(msg transport.Message, retryAfter time.Duration) error {
	pkt, ok := msg.(*wire.Packet)
	if !ok || l.last == nil {
		return fmt.Errorf("sim: no refused arrival to reply BUSY to")
	}
	l.st.Send(l.p, l.last, core.Busy(pkt.Trans, retryAfter))
	return nil
}

// Drain blocks the demux process until every spawned session body has
// returned.
func (l *Listener) Drain() {
	l.p.WaitCond(&l.done, -1, func() bool { return l.finished == l.spawned })
}

// serverConn is one admitted session's channel: an inbox of routed packets
// fed by the demux process, consumed by the session's own process.
type serverConn struct {
	l    *Listener
	peer *Station

	inbox  []*wire.Packet
	head   int
	sig    Signal
	closed bool
}

// Deliver appends a routed arrival to the session inbox. Simulated packets
// popped from the station's interface are exclusively owned, so delivery is
// by reference.
func (c *serverConn) Deliver(msg transport.Message) {
	if c.closed {
		return
	}
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return
	}
	c.inbox = append(c.inbox, pkt)
	c.sig.Broadcast(c.l.n.K)
}

// Hangup closes the inbox from the demux side.
func (c *serverConn) Hangup() {
	c.closed = true
	c.sig.Broadcast(c.l.n.K)
}

// Spawn runs the session body as its own kernel process, against an Env
// whose receives come from the session inbox and whose sends go out the
// serving station's interface (transmit buffers arbitrate between
// concurrent sessions, like the shared socket does on UDP).
func (c *serverConn) Spawn(name string, body func(env core.Env)) {
	c.l.spawned++
	c.l.n.K.Go(name+":"+c.peer.Name, func(p *Proc) {
		body(&serverEnv{c: c, p: p})
		c.l.finished++
		c.l.done.Broadcast(c.l.n.K)
	})
}

// serverEnv adapts one demuxed session to core.Env. The interface copy of
// each arrival was already charged in the demux process (RecvFrom), so
// inbox consumption itself is free — the interface is paid for exactly once
// per packet, as on the direct path.
type serverEnv struct {
	c *serverConn
	p *Proc
}

// Now returns the current virtual time.
func (e *serverEnv) Now() time.Duration { return e.p.Now() }

// Compute charges d of CPU time to the serving host.
func (e *serverEnv) Compute(d time.Duration) { e.p.Sleep(d) }

// Send transmits synchronously to the session's peer. A closed serving
// station (a crashed server — see Station.Close) refuses the send with
// net.ErrClosed, so in-flight session bodies die promptly at the crash
// instead of transmitting from beyond the grave.
func (e *serverEnv) Send(pkt *wire.Packet) error {
	if e.c.l.st.Closed() {
		return net.ErrClosed
	}
	e.c.l.st.Send(e.p, e.c.peer, pkt)
	return nil
}

// SendAsync transmits with double-buffered semantics; like Send it fails on
// a closed serving station.
func (e *serverEnv) SendAsync(pkt *wire.Packet) error {
	if e.c.l.st.Closed() {
		return net.ErrClosed
	}
	e.c.l.st.SendAsync(e.p, e.c.peer, pkt)
	return nil
}

// Recv returns the session's next routed packet, with core.Env timeout
// semantics. Packets already routed are delivered even after a Hangup, like
// a socket's buffered datagrams.
func (e *serverEnv) Recv(timeout time.Duration) (*wire.Packet, error) {
	c := e.c
	k := c.l.n.K
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = k.Now() + timeout
	}
	for c.head >= len(c.inbox) {
		if c.closed {
			return nil, net.ErrClosed
		}
		wait := time.Duration(-1)
		if deadline >= 0 {
			wait = deadline - k.Now()
			if wait < 0 {
				return nil, os.ErrDeadlineExceeded
			}
		}
		if e.p.Wait(&c.sig, wait) && c.head >= len(c.inbox) {
			if c.closed {
				return nil, net.ErrClosed
			}
			return nil, os.ErrDeadlineExceeded
		}
	}
	pkt := c.inbox[c.head]
	c.inbox[c.head] = nil
	c.head++
	if c.head == len(c.inbox) {
		c.inbox = c.inbox[:0]
		c.head = 0
	}
	return pkt, nil
}

// ClientConn is a dialed client-side conn (transport.Client): a fresh
// station's endpoint plus socket-style teardown, so the shared stripe
// orchestrator can abort simulated sessions exactly as it closes UDP
// sockets.
type ClientConn struct {
	*Endpoint
}

// Close closes the conn's station; a blocked engine unblocks with
// net.ErrClosed.
func (c *ClientConn) Close() error {
	c.St.Close()
	return nil
}

// Abort is Close from a sibling's thread of control. Under handoff
// scheduling only one process runs at a time, so the cross-process call is
// safe by construction.
func (c *ClientConn) Abort() { c.St.Close() }

// Fabric implements transport.Fabric on the simulator: Fan gives every body
// its own client station and process, all talking to one serving station.
// Stations are created in index order before any body runs, so the fan-out
// is deterministic at any GOMAXPROCS.
type Fabric struct {
	Net    *Network
	Server *Station
	// P is the orchestrating process; Fan blocks it until every body has
	// returned.
	P *Proc
	// Name prefixes client station and process names (default "client").
	Name string
	// Prepare, when non-nil, configures client i's freshly created station
	// before its session starts — the per-client adversary hook.
	Prepare func(i int, st *Station) error
}

// Now exposes virtual time, so shared orchestrators measure elapsed in the
// substrate's own clock.
func (f *Fabric) Now() time.Duration { return f.Net.K.Now() }

// Fan runs body(i, client_i) for i in [0, n) as concurrent simulated
// processes and returns when all have finished.
func (f *Fabric) Fan(n int, body func(i int, c transport.Client) error) []error {
	errs := make([]error, n)
	prefix := f.Name
	if prefix == "" {
		prefix = "client"
	}
	k := f.Net.K
	var sig Signal
	done := 0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		st := f.Net.AddStation(name)
		if f.Prepare != nil {
			if err := f.Prepare(i, st); err != nil {
				// Still runs through the body (see transport.Fabric), so
				// the failure can cancel sibling sessions promptly.
				errs[i] = body(i, transport.FailedClient(err))
				done++
				continue
			}
		}
		i, st := i, st
		k.Go(name, func(p *Proc) {
			c := &ClientConn{Endpoint: NewEndpoint(p, st, f.Server)}
			errs[i] = body(i, c)
			st.Close()
			done++
			sig.Broadcast(k)
		})
	}
	f.P.WaitCond(&sig, -1, func() bool { return done == n })
	return errs
}
