package sim

import (
	"errors"
	"math/rand"
	"os"
	"testing"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// newTestNet builds a two-station network with the standalone cost model.
func newTestNet(t *testing.T, cost params.CostModel, loss params.LossModel, seed int64) (*Kernel, *Network, *Station, *Station) {
	t.Helper()
	k := NewKernel()
	n, err := NewNetwork(k, cost, loss, seed)
	if err != nil {
		t.Fatal(err)
	}
	return k, n, n.AddStation("src"), n.AddStation("dst")
}

func dataPkt(seq uint32) *wire.Packet {
	return &wire.Packet{Type: wire.TypeData, Seq: seq, Total: 1, VirtualSize: params.DataPacketSize}
}

func ackPkt() *wire.Packet {
	return &wire.Packet{Type: wire.TypeAck, VirtualSize: params.AckPacketSize}
}

func TestNewNetworkValidates(t *testing.T) {
	k := NewKernel()
	if _, err := NewNetwork(k, params.CostModel{}, params.NoLoss(), 1); err == nil {
		t.Error("invalid cost model accepted")
	}
	if _, err := NewNetwork(k, params.Standalone3Com(), params.LossModel{PNet: 2}, 1); err == nil {
		t.Error("invalid loss model accepted")
	}
}

// A single send+receive must cost exactly C (copy in) + T (wire) + τ + C
// (copy out) — the left half of the paper's Figure 2.
func TestSingleTransferTiming(t *testing.T) {
	cost := params.Standalone3Com()
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	var done time.Duration
	k.Go("sender", func(p *Proc) { src.Send(p, dst, dataPkt(0)) })
	k.Go("receiver", func(p *Proc) {
		if _, err := dst.Recv(p, -1); err != nil {
			t.Error(err)
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := cost.C() + cost.T() + cost.Propagation + cost.C()
	if done != want {
		t.Errorf("receive completed at %v, want %v", done, want)
	}
}

// A full 1-packet reliable exchange (data + ack) must cost Table 2's
// 2C + T + 2Ca + Ta (+2τ): ≈ 3.91 ms.
func TestOnePacketExchangeMatchesTable2(t *testing.T) {
	cost := params.Standalone3Com()
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	var done time.Duration
	k.Go("sender", func(p *Proc) {
		src.Send(p, dst, dataPkt(0))
		if _, err := src.Recv(p, -1); err != nil {
			t.Error(err)
		}
		done = p.Now()
	})
	k.Go("receiver", func(p *Proc) {
		if _, err := dst.Recv(p, -1); err != nil {
			t.Error(err)
		}
		dst.Send(p, src, ackPkt())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*cost.C() + cost.T() + 2*cost.Ca() + cost.Ta() + 2*cost.Propagation
	if done != want {
		t.Errorf("exchange = %v, want %v", done, want)
	}
	if done < 3900*time.Microsecond || done > 3950*time.Microsecond {
		t.Errorf("exchange = %v, want ≈ 3.91 ms (Table 2)", done)
	}
}

func TestRecvTimeout(t *testing.T) {
	k, _, _, dst := newTestNet(t, params.Standalone3Com(), params.NoLoss(), 1)
	k.Go("receiver", func(p *Proc) {
		start := p.Now()
		_, err := dst.Recv(p, 5*time.Millisecond)
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("err = %v, want deadline exceeded", err)
		}
		if p.Now()-start != 5*time.Millisecond {
			t.Errorf("timed out after %v", p.Now()-start)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWireLossDropsEverything(t *testing.T) {
	k, _, src, dst := newTestNet(t, params.Standalone3Com(), params.LossModel{PNet: 1}, 1)
	k.Go("sender", func(p *Proc) {
		for i := 0; i < 5; i++ {
			src.Send(p, dst, dataPkt(uint32(i)))
		}
	})
	k.Go("receiver", func(p *Proc) {
		if _, err := dst.Recv(p, 100*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("packet survived certain loss: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Counters.WireDrops != 5 {
		t.Errorf("WireDrops = %d, want 5", dst.Counters.WireDrops)
	}
}

func TestIfaceLossCounted(t *testing.T) {
	k, _, src, dst := newTestNet(t, params.Standalone3Com(), params.LossModel{PIface: 1}, 1)
	k.Go("sender", func(p *Proc) { src.Send(p, dst, dataPkt(0)) })
	k.Go("receiver", func(p *Proc) {
		dst.Recv(p, 50*time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Counters.IfaceDrops != 1 {
		t.Errorf("IfaceDrops = %d, want 1", dst.Counters.IfaceDrops)
	}
}

// With nobody receiving, a burst longer than RxBuffers must overrun.
func TestRxOverrun(t *testing.T) {
	cost := params.Standalone3Com() // RxBuffers = 2
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	k.Go("sender", func(p *Proc) {
		for i := 0; i < 5; i++ {
			src.Send(p, dst, dataPkt(uint32(i)))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Counters.Overruns != 3 {
		t.Errorf("Overruns = %d, want 3 (5 sent, 2 buffers)", dst.Counters.Overruns)
	}
	if got := dst.FlushRx(); got != 2 {
		t.Errorf("FlushRx = %d, want 2", got)
	}
	if got := dst.FlushRx(); got != 0 {
		t.Errorf("second FlushRx = %d, want 0", got)
	}
}

// Loss draws must be reproducible for a fixed seed and differ across seeds.
func TestLossDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		k, _, src, dst := newTestNet(t, params.Standalone3Com(), params.LossModel{PNet: 0.3}, seed)
		k.Go("sender", func(p *Proc) {
			for i := 0; i < 64; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
			}
		})
		k.Go("receiver", func(p *Proc) {
			for {
				if _, err := dst.Recv(p, 20*time.Millisecond); err != nil {
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return dst.Counters.WireDrops
	}
	a1, a2 := run(42), run(42)
	if a1 != a2 {
		t.Errorf("same seed, different drops: %d vs %d", a1, a2)
	}
	if a1 == 0 {
		t.Error("p=0.3 over 64 packets should drop something")
	}
	diff := false
	for seed := int64(1); seed < 6; seed++ {
		if run(seed) != a1 {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("drops identical across five seeds; rng not wired up?")
	}
}

// The Gilbert–Elliott chain must produce clustered (bursty) losses whose
// average matches its stationary mean.
func TestGilbertElliottBurstiness(t *testing.T) {
	ge := &params.GilbertElliott{PGood: 0, PBad: 1, PGoodToBad: 0.02, PBadToGood: 0.2}
	var drops, sent int64
	var runs []int
	for seed := int64(0); seed < 20; seed++ {
		k, _, src, dst := newTestNet(t, params.Standalone3Com(), params.LossModel{Burst: ge}, seed)
		k.Go("sender", func(p *Proc) {
			for i := 0; i < 200; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
			}
		})
		k.Go("receiver", func(p *Proc) {
			// Generous timeout so the receiver outlives loss bursts and
			// never lets the interface overrun.
			for {
				if _, err := dst.Recv(p, 100*time.Millisecond); err != nil {
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if dst.Counters.Overruns != 0 {
			t.Fatalf("seed %d: unexpected overruns %d", seed, dst.Counters.Overruns)
		}
		drops += dst.Counters.WireDrops
		sent += 200
		_ = runs
	}
	mean := ge.MeanLoss() // ≈ 0.0909
	got := float64(drops) / float64(sent)
	if got < mean/2 || got > mean*2 {
		t.Errorf("burst loss rate = %.3f, want ≈ %.3f", got, mean)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	k, _, src, _ := newTestNet(t, params.Standalone3Com(), params.NoLoss(), 1)
	k.Go("bad", func(p *Proc) { src.Send(p, src, dataPkt(0)) })
	if err := k.Run(); err == nil {
		t.Error("self-send should be reported")
	}
}

// Half-duplex: two simultaneous transmissions serialise on the medium.
func TestMediumSerialises(t *testing.T) {
	cost := params.Standalone3Com()
	k, _, a, b := newTestNet(t, cost, params.NoLoss(), 1)
	var aDone, bDone time.Duration
	k.Go("a", func(p *Proc) {
		a.Send(p, b, dataPkt(0))
		aDone = p.Now()
	})
	k.Go("b", func(p *Proc) {
		b.Send(p, a, dataPkt(1))
		bDone = p.Now()
	})
	k.Go("rxa", func(p *Proc) { a.Recv(p, -1) })
	k.Go("rxb", func(p *Proc) { b.Recv(p, -1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both finish copying at C; the first then transmits [C, C+T], the
	// second [C+T, C+2T].
	first, second := aDone, bDone
	if second < first {
		first, second = second, first
	}
	if first != cost.C()+cost.T() {
		t.Errorf("first tx done at %v, want %v", first, cost.C()+cost.T())
	}
	if second != cost.C()+2*cost.T() {
		t.Errorf("second tx done at %v, want %v (serialised)", second, cost.C()+2*cost.T())
	}
}

// SendAsync with a double-buffered interface must pipeline copies with
// transmissions: N packets leave in N·C + T when T ≤ C (Figure 3.d).
func TestDoubleBufferedPipelines(t *testing.T) {
	cost := params.DoubleBuffered(params.Standalone3Com())
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	const n = 8
	var lastArrival time.Duration
	k.Go("sender", func(p *Proc) {
		for i := 0; i < n; i++ {
			src.SendAsync(p, dst, dataPkt(uint32(i)))
		}
		src.Drain(p)
	})
	k.Go("receiver", func(p *Proc) {
		for i := 0; i < n; i++ {
			if _, err := dst.Recv(p, -1); err != nil {
				t.Error(err)
				return
			}
		}
		lastArrival = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Last packet copied in at n·C, fully transmitted at n·C + T, arrives
	// τ later, copy-out adds C.
	want := time.Duration(n)*cost.C() + cost.T() + cost.Propagation + cost.C()
	if lastArrival != want {
		t.Errorf("last arrival %v, want %v", lastArrival, want)
	}
}

// With a single-buffered interface, SendAsync degenerates to Send spacing:
// the copy of packet k+1 cannot start until packet k has left.
func TestSingleBufferedAsyncSerialises(t *testing.T) {
	cost := params.Standalone3Com()
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	const n = 4
	var sendDone time.Duration
	k.Go("sender", func(p *Proc) {
		for i := 0; i < n; i++ {
			src.SendAsync(p, dst, dataPkt(uint32(i)))
		}
		src.Drain(p)
		sendDone = p.Now()
	})
	k.Go("receiver", func(p *Proc) {
		for i := 0; i < n; i++ {
			dst.Recv(p, -1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(n) * (cost.C() + cost.T()); sendDone != want {
		t.Errorf("drain at %v, want %v", sendDone, want)
	}
}

func TestCountersAndTraceSpans(t *testing.T) {
	cost := params.Standalone3Com()
	k := NewKernel()
	n, err := NewNetwork(k, cost, params.NoLoss(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var spans []Span
	n.Trace = func(s Span) { spans = append(spans, s) }
	src, dst := n.AddStation("src"), n.AddStation("dst")
	k.Go("sender", func(p *Proc) { src.Send(p, dst, dataPkt(0)) })
	k.Go("receiver", func(p *Proc) { dst.Recv(p, -1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if src.Counters.TxPackets != 1 || src.Counters.TxBytes != params.DataPacketSize {
		t.Errorf("tx counters: %+v", src.Counters)
	}
	if dst.Counters.RxPackets != 1 || dst.Counters.RxBytes != params.DataPacketSize {
		t.Errorf("rx counters: %+v", dst.Counters)
	}
	// Expect: copy-in span (src cpu), wire span, copy-out span (dst cpu).
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3: %+v", len(spans), spans)
	}
	if spans[0].Host != "src" || spans[0].Lane != LaneCPU {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[1].Host != "net" || spans[1].Lane != LaneWire {
		t.Errorf("span1 = %+v", spans[1])
	}
	if spans[2].Host != "dst" || spans[2].Lane != LaneCPU {
		t.Errorf("span2 = %+v", spans[2])
	}
	for _, s := range spans {
		if s.End <= s.Start {
			t.Errorf("empty span %+v", s)
		}
	}
}

func TestEndpointAdapter(t *testing.T) {
	cost := params.Standalone3Com()
	k, _, src, dst := newTestNet(t, cost, params.NoLoss(), 1)
	var elapsed time.Duration
	k.Go("sender", func(p *Proc) {
		env := NewEndpoint(p, src, dst)
		env.Compute(time.Millisecond)
		if err := env.Send(dataPkt(0)); err != nil {
			t.Error(err)
		}
		if err := env.SendAsync(dataPkt(1)); err != nil {
			t.Error(err)
		}
		src.Drain(p)
		elapsed = env.Now()
	})
	k.Go("receiver", func(p *Proc) {
		env := NewEndpoint(p, dst, src)
		for i := 0; i < 2; i++ {
			if _, err := env.Recv(-1); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := time.Millisecond + 2*(cost.C()+cost.T()); elapsed != want {
		t.Errorf("elapsed %v, want %v", elapsed, want)
	}
}

// Fuzz-ish determinism check: random protocols over a lossy link always
// produce the same final counters for the same seed.
func TestFullDeterminism(t *testing.T) {
	run := func(seed int64) (Counters, Counters, time.Duration) {
		k, _, src, dst := newTestNet(t, params.VKernel(), params.LossModel{PNet: 0.1, PIface: 0.05}, seed)
		rng := rand.New(rand.NewSource(seed))
		nPkts := 10 + rng.Intn(50)
		k.Go("sender", func(p *Proc) {
			for i := 0; i < nPkts; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
				if rng.Intn(3) == 0 {
					p.Sleep(time.Duration(rng.Intn(1000)) * time.Microsecond)
				}
			}
		})
		k.Go("receiver", func(p *Proc) {
			for {
				if _, err := dst.Recv(p, 30*time.Millisecond); err != nil {
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return src.Counters, dst.Counters, k.Now()
	}
	for seed := int64(0); seed < 10; seed++ {
		s1, d1, t1 := run(seed)
		s2, d2, t2 := run(seed)
		if s1 != s2 || d1 != d2 || t1 != t2 {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

// One broadcast transmission is heard by every other station: the wire is
// occupied once, each receiver gets its own copy, and the sender hears
// nothing (it transmitted the frame).
func TestBroadcastDelivery(t *testing.T) {
	cost := params.Standalone3Com()
	k := NewKernel()
	n, err := NewNetwork(k, cost, params.NoLoss(), 1)
	if err != nil {
		t.Fatal(err)
	}
	src := n.AddStation("src")
	var dsts []*Station
	for i := 0; i < 4; i++ {
		dsts = append(dsts, n.AddStation("dst"))
	}
	payload := []byte("heard by all")
	k.Go("sender", func(p *Proc) {
		src.SendBroadcast(p, &wire.Packet{Type: wire.TypeData, Payload: payload, VirtualSize: params.DataPacketSize})
	})
	for _, d := range dsts {
		d := d
		k.Go("receiver", func(p *Proc) {
			pkt, err := d.Recv(p, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if string(pkt.Payload) != string(payload) {
				t.Errorf("%s received %q", d.Name, pkt.Payload)
			}
			// Payload-carrying broadcast frames must not share buffers.
			pkt.Payload[0] = 'X'
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if src.Counters.TxPackets != 1 {
		t.Errorf("broadcast cost %d transmissions, want 1", src.Counters.TxPackets)
	}
	for _, d := range dsts {
		if d.Counters.RxPackets != 1 {
			t.Errorf("%s received %d packets, want 1", d.Name, d.Counters.RxPackets)
		}
	}
	if src.Counters.RxPackets != 0 || len(src.rxq) != 0 {
		t.Error("sender heard its own broadcast")
	}
}
