package sim

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"blastlan/internal/ether"
	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// Span is one rectangle of simulated activity, consumed by the trace
// package to render the paper's Figure 2/3 timelines.
type Span struct {
	Host  string // station name, or "net" for the wire
	Lane  string // LaneCPU or LaneWire
	Label string
	Start time.Duration
	End   time.Duration
}

// Lane names used in trace spans.
const (
	LaneCPU  = "cpu"
	LaneWire = "wire"
)

// Network models the paper's measurement set-up: stations attached to one
// half-duplex broadcast medium, with per-packet copy costs charged to the
// station CPUs and seeded loss processes on the wire and in the receiving
// interfaces.
type Network struct {
	K    *Kernel
	Cost params.CostModel
	Loss params.LossModel

	// Trace, if non-nil, receives one Span per copy and transmission.
	Trace func(Span)

	// Medium selects the arbitration discipline: MediumFIFO (default,
	// the paper's uncontended setting) or MediumCSMACD (collisions and
	// exponential backoff, for the load extension).
	Medium MediumMode

	// DropFilter, when non-nil, is consulted for every delivery before the
	// probabilistic loss models: returning true drops the packet (counted
	// as a wire drop). Tests use it to inject precisely targeted failures
	// — "lose exactly the final acknowledgement of round one" — that
	// seed-hunting cannot express.
	DropFilter func(pkt *wire.Packet, to *Station) bool

	// Collisions and ExcessiveCollisions count CSMA/CD events.
	Collisions          int64
	ExcessiveCollisions int64

	// Adv totals the events injected by an installed adversary.
	Adv AdvCounters

	rng      *rand.Rand
	stations []*Station
	adv      *netAdversary

	// medium state: at most one frame on the wire at a time; contenders
	// queue (FIFO order, or CSMA/CD contention set).
	mediumBusy bool
	mediumQ    []*txJob

	// freeJobs pools txJob records recycled after FIFO-medium delivery.
	freeJobs []*txJob

	geBad bool // Gilbert–Elliott loss-process state
}

// NewNetwork validates the models and returns an empty network.
func NewNetwork(k *Kernel, cost params.CostModel, loss params.LossModel, seed int64) (*Network, error) {
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if err := loss.Validate(); err != nil {
		return nil, err
	}
	return &Network{K: k, Cost: cost, Loss: loss, rng: rand.New(rand.NewSource(seed))}, nil
}

// Counters accumulates per-station totals for experiment reporting.
type Counters struct {
	TxPackets    int64
	TxBytes      int64
	RxPackets    int64
	RxBytes      int64
	WireDrops    int64 // lost on the medium (the paper's network errors)
	IfaceDrops   int64 // lost in the receiving interface (the paper's interface errors)
	CorruptDrops int64 // mangled in flight and rejected by the wire checksum
	Overruns     int64 // arrived while all receive buffers were full
}

// AdvCounters totals the events an installed adversary injected, for
// consistency checks against the protocol-level results.
type AdvCounters struct {
	Drops      int64 // wire drops (adversary loss process or script)
	IfaceDrops int64 // interface drops
	Corrupts   int64 // frames bit-flipped (all were then rejected or passed)
	Passed     int64 // corrupted frames that evaded every codec check
	Dups       int64 // duplicate deliveries injected (all packet types)
	DataDups   int64 // duplicate deliveries of TypeData packets
	Holds      int64 // packets held back for reordering
	Flushes    int64 // holds released by the flush bound, not by overtaking
	Delays     int64 // packets given extra jitter delay
}

// Station is one host plus its network interface.
type Station struct {
	net  *Network
	Name string
	Addr ether.Addr

	Counters Counters

	rxq   []rxItem
	rxSig Signal

	txFree int
	txSig  Signal

	sink   bool
	closed bool

	// adv, when non-nil, is a station-scoped hostile-network model: it
	// judges every delivery this station sends or receives, exactly like an
	// adversary installed on both directions of one UDP endpoint. See
	// SetAdversary.
	adv *netAdversary

	// advHeld is this receiver's reorder queue: packets an adversary is
	// holding back until enough later arrivals judged by the same adversary
	// have overtaken them.
	advHeld []heldPkt
}

// rxItem is one packet queued in a station's receive interface, tagged with
// the station that transmitted it so a serving demux loop (sim.Listener)
// can route arrivals by source.
type rxItem struct {
	pkt  *wire.Packet
	from *Station
}

// String returns the station's name, so a Station can stand in for a peer
// address in substrate-independent logs and transfer stats.
func (s *Station) String() string { return s.Name }

// SetSink marks the station as a traffic sink: delivered packets are
// counted and discarded without occupying receive buffers. Load-generator
// destinations use this so background frames never overrun a real
// receiver.
func (s *Station) SetSink() { s.sink = true }

// txJob tracks one packet through the transmit path. Jobs recycle through
// Network.freeJobs; getJob clears stale fields so a sender still reading
// done at delivery time (same-timestamp resume) observes the final value.
type txJob struct {
	from    *Station
	to      *Station
	pkt     *wire.Packet
	done    bool
	sig     Signal
	txStart time.Duration
	// attempts counts CSMA/CD collisions suffered by this frame.
	attempts int
	// detached jobs (background traffic) own no transmit buffer and no
	// waiting process.
	detached bool
}

// getJob takes a job record from the pool (or allocates one) and binds it to
// a transmission.
func (n *Network) getJob(from, to *Station, pkt *wire.Packet) *txJob {
	var job *txJob
	if l := len(n.freeJobs); l > 0 {
		job = n.freeJobs[l-1]
		n.freeJobs[l-1] = nil
		n.freeJobs = n.freeJobs[:l-1]
		job.done = false
		job.txStart = 0
		job.attempts = 0
		job.detached = false
		job.sig.waiters = job.sig.waiters[:0]
	} else {
		job = &txJob{}
	}
	job.from, job.to, job.pkt = from, to, pkt
	return job
}

// putJob returns a delivered job to the pool. Stale fields are cleared in
// getJob, not here: the sender's resume can fire at the same timestamp as
// the delivery, and it must still read done == true.
func (n *Network) putJob(job *txJob) {
	job.pkt = nil
	n.freeJobs = append(n.freeJobs, job)
}

// cloneForWire returns the packet object handed to the medium. Packets
// carrying real payload bytes are deep-copied, mirroring a real interface's
// copy semantics (a retransmitting sender may reuse its buffers).
// Payload-elided simulated packets are immutable by construction — protocol
// engines build a fresh Packet per transmission and never mutate one after
// handing it to Send — so they are delivered by reference, sharing the
// read-only SimMissing list instead of deep-cloning every packet.
func cloneForWire(p *wire.Packet) *wire.Packet {
	if p.VirtualSize > 0 && len(p.Payload) == 0 {
		return p
	}
	return p.Clone()
}

// AddStation attaches a new station to the network.
func (n *Network) AddStation(name string) *Station {
	s := &Station{
		net:    n,
		Name:   name,
		Addr:   ether.HostAddr(len(n.stations) + 1),
		txFree: n.Cost.TxBuffers,
	}
	n.stations = append(n.stations, s)
	return s
}

// Stations returns the attached stations in attachment order.
func (n *Network) Stations() []*Station { return n.stations }

func (n *Network) span(host, lane, label string, start, end time.Duration) {
	if n.Trace != nil {
		n.Trace(Span{Host: host, Lane: lane, Label: label, Start: start, End: end})
	}
}

// typeLabel names a packet for trace spans; the post-measurement FIN gets
// its own label so timeline renderers can separate protocol activity from
// teardown housekeeping.
func typeLabel(p *wire.Packet) string {
	if p.Type == wire.TypeAck && p.Flags&wire.FlagDone != 0 {
		return "FIN"
	}
	return p.Type.String()
}

// Send copies the packet into the interface and waits for the transmission
// to complete (the paper's single-buffered busy-wait semantics). It must be
// called from process context.
func (s *Station) Send(p *Proc, to *Station, pkt *wire.Packet) {
	job := s.beginSend(p, to, pkt)
	for !job.done {
		p.Wait(&job.sig, -1)
	}
}

// SendAsync copies the packet into a free interface buffer and returns as
// soon as the copy completes; the interface transmits in the background
// (the double-buffered semantics of §2.1.3/Figure 3.d). If all transmit
// buffers are busy the call waits for one to free.
func (s *Station) SendAsync(p *Proc, to *Station, pkt *wire.Packet) {
	s.beginSend(p, to, pkt)
}

// Drain blocks until all of the station's transmit buffers are idle,
// ensuring previously issued SendAsync transmissions have left the wire.
func (s *Station) Drain(p *Proc) {
	for s.txFree != s.net.Cost.TxBuffers {
		p.Wait(&s.txSig, -1)
	}
}

func (s *Station) beginSend(p *Proc, to *Station, pkt *wire.Packet) *txJob {
	if to == nil || to == s {
		panic(fmt.Sprintf("sim: station %s: invalid send destination", s.Name))
	}
	return s.beginSendJob(p, to, pkt)
}

// SendBroadcast transmits one frame heard by every other attached station
// — the shared medium's native one-to-many (an ether.Broadcast frame on a
// real LAN, §2 of the paper's setting). The wire is occupied exactly once
// regardless of the receiver count; each receiver then runs the frame
// through its own delivery path (drop filter, adversary, loss draws), so
// a broadcast is unreliable per receiver just as on a real cable. Blocks
// until the transmission completes, like Send.
func (s *Station) SendBroadcast(p *Proc, pkt *wire.Packet) {
	job := s.beginSendJob(p, nil, pkt)
	for !job.done {
		p.Wait(&job.sig, -1)
	}
}

// beginSendJob is the shared transmit path; to == nil means broadcast.
func (s *Station) beginSendJob(p *Proc, to *Station, pkt *wire.Packet) *txJob {
	k := s.net.K
	// Acquire a transmit buffer (inline wait loop: no closure per send).
	for s.txFree <= 0 {
		p.Wait(&s.txSig, -1)
	}
	s.txFree--
	// Copy the packet into the interface: CPU time on this station.
	size := pkt.WireSize()
	start := k.Now()
	p.Sleep(s.net.Cost.CopyTime(size))
	if s.net.Trace != nil {
		s.net.span(s.Name, LaneCPU, "in:"+typeLabel(pkt), start, k.Now())
	}
	s.Counters.TxPackets++
	s.Counters.TxBytes += int64(size)
	job := s.net.getJob(s, to, cloneForWire(pkt))
	s.net.enqueueTx(job)
	return job
}

// enqueueTx starts the transmission if the medium is idle, else queues it
// under the configured arbitration discipline.
func (n *Network) enqueueTx(job *txJob) {
	if n.Medium == MediumCSMACD {
		n.csmaEnqueue(job)
		return
	}
	if n.mediumBusy {
		n.mediumQ = append(n.mediumQ, job)
		return
	}
	n.startTx(job)
}

// startTx seizes the medium and schedules the end of the frame as a typed
// pooled event — the FIFO transmit path allocates nothing in steady state.
func (n *Network) startTx(job *txJob) {
	n.mediumBusy = true
	k := n.K
	job.txStart = k.Now()
	ev := k.newEvent(k.now+n.Cost.WireTime(job.pkt.WireSize()), evTxDone)
	ev.job = job
}

// txDone fires when the frame's last bit leaves the wire: it frees the
// medium, schedules delivery one propagation delay later, releases the
// sender's buffer and starts the next queued transmission.
func (n *Network) txDone(job *txJob) {
	k := n.K
	if n.Trace != nil {
		n.span("net", LaneWire, fmt.Sprintf("%s %d", typeLabel(job.pkt), job.pkt.Seq), job.txStart, k.Now())
	}
	n.mediumBusy = false
	// Propagation: the frame is fully received τ after the last bit
	// leaves the sender.
	ev := k.newEvent(k.now+n.Cost.Propagation, evDeliver)
	ev.job = job
	// Free the sender's buffer and wake anyone waiting on it.
	n.finishTx(job)
	// Medium is free: start the next queued transmission, FIFO.
	if len(n.mediumQ) > 0 {
		next := n.mediumQ[0]
		n.mediumQ = append(n.mediumQ[:0], n.mediumQ[1:]...)
		n.startTx(next)
	}
}

// netAdversary is an installed hostile-network model: the seeded decision
// engine plus the scratch buffers the corruption path encodes frames into.
type netAdversary struct {
	cfg     params.Adversary
	st      *params.AdversaryState
	scratch []byte
}

// heldPkt is one reordered packet waiting in a receiver's hold queue.
type heldPkt struct {
	pkt       *wire.Packet
	from      *Station      // transmitting station (for source-tagged delivery)
	by        *netAdversary // the adversary that held it (overtaking is scoped to it)
	remaining int           // overtaking deliveries still needed
	timer     Timer         // flush bound (liveness when traffic stops)
}

// SetAdversary installs a hostile-network model on the deliver path, seeded
// independently of the loss-model RNG. It composes with the plain LossModel
// given to NewNetwork (the adversary judges first; survivors still face the
// network's own loss processes) and with DropFilter (consulted first of all).
func (n *Network) SetAdversary(adv params.Adversary, seed int64) error {
	if err := adv.Validate(); err != nil {
		return err
	}
	if !adv.Active() {
		n.adv = nil
		return nil
	}
	n.adv = &netAdversary{cfg: adv, st: adv.NewState(seed)}
	return nil
}

// SetAdversary installs a station-scoped hostile-network model: it judges
// every delivery this station transmits or receives, with its own seeded
// decision stream and its own hold scope. This is the simulator mirror of
// installing a seeded adversary on both directions of one UDP endpoint
// (udplan.Endpoint.SetAdversary): in a many-client scenario each client
// carries its own adversary, so one client's traffic cannot perturb
// another's decision stream and per-client behaviour reproduces exactly,
// regardless of how sessions interleave on the shared medium.
func (s *Station) SetAdversary(adv params.Adversary, seed int64) error {
	if err := adv.Validate(); err != nil {
		return err
	}
	if !adv.Active() {
		s.adv = nil
		return nil
	}
	s.adv = &netAdversary{cfg: adv, st: adv.NewState(seed)}
	return nil
}

// advFor selects the adversary judging a from→to delivery: the transmitting
// station's, else the receiving station's, else the network-wide one. A
// station adversary therefore sees exactly the packets one endpoint's
// MangleTx/MangleRx pair would see on UDP.
func (n *Network) advFor(from, to *Station) *netAdversary {
	if from != nil && from.adv != nil {
		return from.adv
	}
	if to.adv != nil {
		return to.adv
	}
	return n.adv
}

// deliverBroadcast fans one transmitted frame out to every attached
// station except the transmitter. Each receiver gets its own delivery —
// its own drop-filter, adversary and loss draws, and its own payload copy
// when the frame carries real bytes — so per-receiver outcomes are
// independent, exactly as for stations tapping a shared cable.
func (n *Network) deliverBroadcast(from *Station, pkt *wire.Packet) {
	for _, to := range n.stations {
		if to == from {
			continue
		}
		p := pkt
		if len(pkt.Payload) > 0 {
			p = pkt.Clone()
		}
		n.deliver(from, to, p)
	}
}

// deliver applies the drop filter and the adversary, then the loss model.
func (n *Network) deliver(from, to *Station, pkt *wire.Packet) {
	if n.DropFilter != nil && n.DropFilter(pkt, to) {
		to.Counters.WireDrops++
		return
	}
	adv := n.advFor(from, to)
	if adv == nil {
		n.deliverNow(from, to, pkt)
		return
	}
	n.deliverAdversarial(adv, from, to, pkt)
}

// deliverAdversarial runs one packet through the judging adversary: it first
// lets the arrival overtake the receiver's held packets (those held by the
// same adversary), then applies the verdict — drop, corrupt, duplicate,
// hold, delay — and finally releases any holds the arrival matured.
// Replayed deliveries (matured holds, duplicates, delayed packets) bypass
// the adversary so a packet is judged exactly once.
func (n *Network) deliverAdversarial(adv *netAdversary, from, to *Station, pkt *wire.Packet) {
	ready := to.advPass(adv)
	m := adv.st.Judge(pkt)
	switch {
	case m.Drop:
		to.Counters.WireDrops++
		n.Adv.Drops++
	case m.IfaceDrop:
		to.Counters.IfaceDrops++
		n.Adv.IfaceDrops++
	case m.Corrupt && n.corrupt(adv, to, &pkt, m.CorruptBit):
		// rejected by the wire codec; counted in corrupt
	default:
		if m.Hold > 0 {
			n.Adv.Holds++
			held := pkt
			timer := n.K.After(adv.cfg.FlushAfter(), func() { n.flushHeld(to, held) })
			to.advHeld = append(to.advHeld, heldPkt{pkt: pkt, from: from, by: adv, remaining: m.Hold, timer: timer})
		} else if m.Delay > 0 {
			n.Adv.Delays++
			delayed := pkt
			n.K.After(m.Delay, func() { n.deliverNow(from, to, delayed) })
		} else {
			n.deliverNow(from, to, pkt)
		}
		if m.Duplicate {
			n.Adv.Dups++
			if pkt.Type == wire.TypeData {
				n.Adv.DataDups++
			}
			dup := pkt
			if len(pkt.Payload) > 0 {
				dup = pkt.Clone()
			}
			n.deliverNow(from, to, dup)
		}
	}
	for _, h := range ready {
		h.timer.Cancel()
		n.deliverNow(h.from, to, h.pkt)
	}
}

// advPass records one arrival judged by adv overtaking the station's held
// packets and returns the holds that matured (to be delivered after the
// arrival). Only packets held by the same adversary are overtaken: each
// client's reorder scope is its own traffic, exactly as on a per-endpoint
// UDP adversary.
func (s *Station) advPass(adv *netAdversary) []heldPkt {
	if len(s.advHeld) == 0 {
		return nil
	}
	var ready []heldPkt
	keep := s.advHeld[:0]
	for i := range s.advHeld {
		h := s.advHeld[i]
		if h.by == adv {
			h.remaining--
		}
		if h.remaining <= 0 {
			ready = append(ready, h)
		} else {
			keep = append(keep, h)
		}
	}
	s.advHeld = keep
	return ready
}

// flushHeld releases a held packet whose flush bound expired before enough
// traffic overtook it.
func (n *Network) flushHeld(to *Station, pkt *wire.Packet) {
	for i := range to.advHeld {
		if to.advHeld[i].pkt == pkt {
			from := to.advHeld[i].from
			to.advHeld = append(to.advHeld[:i], to.advHeld[i+1:]...)
			n.Adv.Flushes++
			n.deliverNow(from, to, pkt)
			return
		}
	}
}

// corrupt flips the selected bit of the packet's encoded frame and runs the
// real wire codec over the result: packets whose payload bytes are carried
// are encoded, mangled and re-decoded, so the Internet checksum (and the
// codec's structural checks) genuinely fire. Payload-elided simulated packets
// have no frame to mangle; the checksum rejecting the flip is modelled
// directly. It reports whether the packet was consumed (rejected); on the
// (codec-evading) false path *pkt is replaced with what actually decoded.
func (n *Network) corrupt(adv *netAdversary, to *Station, pkt **wire.Packet, bit int64) bool {
	n.Adv.Corrupts++
	p := *pkt
	if len(p.Payload) == 0 && p.VirtualSize > 0 {
		to.Counters.CorruptDrops++
		return true
	}
	buf, err := p.Encode(adv.scratch[:0])
	adv.scratch = buf[:0]
	if err != nil {
		to.Counters.CorruptDrops++
		return true
	}
	params.FlipBit(buf, bit)
	var dec wire.Packet
	if err := wire.DecodeInto(&dec, buf); err != nil {
		to.Counters.CorruptDrops++
		return true
	}
	// The flip evaded the checksum: deliver what the receiver would decode.
	n.Adv.Passed++
	q := dec.Clone()
	q.VirtualSize = p.VirtualSize
	*pkt = q
	return false
}

// deliverNow applies the loss model and enqueues the packet in the receiver.
func (n *Network) deliverNow(from, to *Station, pkt *wire.Packet) {
	if n.wireLost() {
		to.Counters.WireDrops++
		return
	}
	if n.Loss.PIface > 0 && n.rng.Float64() < n.Loss.PIface {
		to.Counters.IfaceDrops++
		return
	}
	if to.sink {
		to.Counters.RxPackets++
		to.Counters.RxBytes += int64(pkt.WireSize())
		return
	}
	if len(to.rxq) >= n.Cost.RxBuffers {
		to.Counters.Overruns++
		return
	}
	to.rxq = append(to.rxq, rxItem{pkt: pkt, from: from})
	to.rxSig.Broadcast(n.K)
}

// wireLost draws from the configured wire-loss process.
func (n *Network) wireLost() bool {
	return n.Loss.DrawWireLoss(n.rng, &n.geBad)
}

// Recv blocks until a packet has been copied out of the interface and
// returns it. timeout < 0 waits forever; on expiry Recv returns
// os.ErrDeadlineExceeded (matching net.Conn deadline semantics, so protocol
// code is substrate-agnostic). The copy out of the interface is charged to
// this station's CPU. Single consumer per station.
func (s *Station) Recv(p *Proc, timeout time.Duration) (*wire.Packet, error) {
	pkt, _, err := s.RecvFrom(p, timeout)
	return pkt, err
}

// RecvFrom is Recv reporting the transmitting station as well — the
// demultiplexing primitive a serving station needs to route concurrent
// client conversations (see sim.Listener). A closed station reports
// net.ErrClosed, mirroring a closed socket.
func (s *Station) RecvFrom(p *Proc, timeout time.Duration) (*wire.Packet, *Station, error) {
	k := s.net.K
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = k.Now() + timeout
	}
	for len(s.rxq) == 0 {
		if s.closed {
			return nil, nil, net.ErrClosed
		}
		wait := time.Duration(-1)
		if deadline >= 0 {
			wait = deadline - k.Now()
			if wait < 0 {
				return nil, nil, os.ErrDeadlineExceeded
			}
		}
		if p.Wait(&s.rxSig, wait) && len(s.rxq) == 0 {
			if s.closed {
				return nil, nil, net.ErrClosed
			}
			return nil, nil, os.ErrDeadlineExceeded
		}
	}
	it := s.rxq[0]
	size := it.pkt.WireSize()
	start := k.Now()
	p.Sleep(s.net.Cost.CopyTime(size))
	if s.net.Trace != nil {
		s.net.span(s.Name, LaneCPU, "out:"+typeLabel(it.pkt), start, k.Now())
	}
	// The buffer is occupied until the copy completes.
	s.rxq = append(s.rxq[:0], s.rxq[1:]...)
	s.Counters.RxPackets++
	s.Counters.RxBytes += int64(size)
	return it.pkt, it.from, nil
}

// Close marks the station closed, waking any blocked receiver with
// net.ErrClosed — the simulator's equivalent of closing a socket, which is
// how a striped pull aborts sibling stripes promptly when one fails. It
// must be called from process or kernel context.
func (s *Station) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.rxSig.Broadcast(s.net.K)
}

// Closed reports whether the station has been closed.
func (s *Station) Closed() bool { return s.closed }

// Reopen marks a closed station open again — the simulator's equivalent of a
// crashed server binding a fresh socket on the same port. Packets that queued
// while closed are still in the interface; a restart that should lose them
// (a real crash loses kernel socket buffers) calls FlushRx first.
func (s *Station) Reopen() { s.closed = false }

// FlushRx discards any packets queued in the receive interface without
// charging copy time (used between Monte-Carlo attempts that model a
// restart, and by tests).
func (s *Station) FlushRx() int {
	n := len(s.rxq)
	s.rxq = s.rxq[:0]
	return n
}

// Endpoint adapts a (process, station, peer) triple to the Env interface the
// protocol engines in internal/core are written against.
type Endpoint struct {
	P    *Proc
	St   *Station
	Peer *Station
}

// NewEndpoint binds a process to its station and peer.
func NewEndpoint(p *Proc, st, peer *Station) *Endpoint {
	return &Endpoint{P: p, St: st, Peer: peer}
}

// Now returns the current virtual time.
func (e *Endpoint) Now() time.Duration { return e.P.Now() }

// Compute charges d of CPU time to this endpoint's host.
func (e *Endpoint) Compute(d time.Duration) { e.P.Sleep(d) }

// SleepFor idles the endpoint's process for d of virtual time — the hook
// core.ResumeOptions uses for backoff waits, so a simulated client's recovery
// schedule runs on the simulator's clock instead of the wall's.
func (e *Endpoint) SleepFor(d time.Duration) { e.P.Sleep(d) }

// Send transmits synchronously (single-buffered semantics).
func (e *Endpoint) Send(pkt *wire.Packet) error {
	e.St.Send(e.P, e.Peer, pkt)
	return nil
}

// SendAsync transmits with double-buffered semantics.
func (e *Endpoint) SendAsync(pkt *wire.Packet) error {
	e.St.SendAsync(e.P, e.Peer, pkt)
	return nil
}

// Recv waits for the next packet.
func (e *Endpoint) Recv(timeout time.Duration) (*wire.Packet, error) {
	return e.St.Recv(e.P, timeout)
}
