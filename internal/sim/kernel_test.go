package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.Go("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15*time.Millisecond {
		t.Errorf("final time = %v, want 15ms", at)
	}
	if k.Now() != 15*time.Millisecond {
		t.Errorf("kernel time = %v", k.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	k := NewKernel()
	k.Go("p", func(p *Proc) { p.Sleep(-time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Errorf("time advanced by negative sleep: %v", k.Now())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(2 * time.Millisecond)
				log = append(log, "a")
			}
		})
		k.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(3 * time.Millisecond)
				log = append(log, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	// a wakes at 2, 4, 6 ms; b wakes at 3, 6 ms. The 6 ms tie goes to b,
	// whose wake event was scheduled earlier (at t=3 ms vs t=4 ms).
	want := []string{"a", "b", "a", "b", "a"}
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v", trial, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events out of order: %v", order)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.After(time.Millisecond, func() { fired = true })
	tm.Cancel()
	tm.Cancel()        // idempotent
	(Timer{}).Cancel() // zero Timer is a no-op
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	k.After(10*time.Millisecond, func() {
		k.Schedule(2*time.Millisecond, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Errorf("past event fired at %v", at)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	var sig Signal
	woken := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			if timedOut := p.Wait(&sig, -1); timedOut {
				t.Error("unexpected timeout")
			}
			woken++
		})
	}
	k.After(time.Millisecond, func() { sig.Broadcast(k) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestWaitTimeout(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var timedOut bool
	var at time.Duration
	k.Go("w", func(p *Proc) {
		timedOut = p.Wait(&sig, 7*time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("expected timeout")
	}
	if at != 7*time.Millisecond {
		t.Errorf("timed out at %v", at)
	}
}

func TestWaitSignalCancelsTimer(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var timedOut bool
	k.Go("w", func(p *Proc) {
		timedOut = p.Wait(&sig, 10*time.Millisecond)
		p.Sleep(50 * time.Millisecond) // outlive the abandoned deadline
	})
	k.After(time.Millisecond, func() { sig.Broadcast(k) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Error("signal arrived before deadline but Wait reported timeout")
	}
}

func TestWaitCond(t *testing.T) {
	k := NewKernel()
	var sig Signal
	ready := false
	var ok bool
	k.Go("w", func(p *Proc) {
		ok = p.WaitCond(&sig, -1, func() bool { return ready })
	})
	k.After(time.Millisecond, func() { sig.Broadcast(k) }) // spurious
	k.After(2*time.Millisecond, func() {
		ready = true
		sig.Broadcast(k)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("WaitCond should have succeeded")
	}
}

func TestWaitCondDeadline(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var ok bool
	k.Go("w", func(p *Proc) {
		ok = p.WaitCond(&sig, 3*time.Millisecond, func() bool { return false })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("WaitCond should have timed out")
	}
	if k.Now() != 3*time.Millisecond {
		t.Errorf("deadline at %v", k.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Go("stuck", func(p *Proc) { p.Wait(&sig, -1) })
	if err := k.Run(); err == nil {
		t.Error("expected deadlock error")
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Go("daemon", func(p *Proc) {
		p.Daemon()
		p.Wait(&sig, -1)
	})
	k.Go("worker", func(p *Proc) { p.Sleep(time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Errorf("daemon counted as deadlock: %v", err)
	}
}

func TestProcPanicReported(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	if err := k.Run(); err == nil {
		t.Error("expected panic to surface as error")
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	k.Go("alice", func(p *Proc) {
		if p.Name() != "alice" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property-style test: a random schedule of sleeps always fires in
// nondecreasing time order regardless of insertion order.
func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := NewKernel()
		var fired []time.Duration
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Microsecond
			k.Schedule(at, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != n {
			t.Fatalf("fired %d of %d", len(fired), n)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("out of order at %d: %v < %v", i, fired[i], fired[i-1])
			}
		}
	}
}
