package sim

import (
	"testing"
	"time"

	"blastlan/internal/params"
	"blastlan/internal/wire"
)

// newAdvNet builds a lossless two-station network with the given adversary.
func newAdvNet(t *testing.T, adv params.Adversary, seed int64) (*Kernel, *Network, *Station, *Station) {
	t.Helper()
	k, n, src, dst := newTestNet(t, params.Standalone3Com(), params.NoLoss(), seed)
	if err := n.SetAdversary(adv, seed); err != nil {
		t.Fatal(err)
	}
	return k, n, src, dst
}

func TestSetAdversaryValidates(t *testing.T) {
	_, n, _, _ := newTestNet(t, params.Standalone3Com(), params.NoLoss(), 1)
	if err := n.SetAdversary(params.Adversary{CorruptProb: 2}, 1); err == nil {
		t.Error("invalid adversary accepted")
	}
	if err := n.SetAdversary(params.Adversary{}, 1); err != nil || n.adv != nil {
		t.Error("inactive adversary should uninstall")
	}
}

// A scripted hold of depth 2 must deliver the held packet after exactly two
// later packets have overtaken it.
func TestAdversaryScriptedReorder(t *testing.T) {
	adv := params.Adversary{Script: func(p *wire.Packet) params.Mangle {
		if p.Type == wire.TypeData && p.Seq == 0 {
			return params.Mangle{Hold: 2}
		}
		return params.Mangle{}
	}}
	k, n, src, dst := newAdvNet(t, adv, 1)
	var order []uint32
	k.Go("sender", func(p *Proc) {
		for i := 0; i < 4; i++ {
			src.Send(p, dst, dataPkt(uint32(i)))
		}
	})
	k.Go("receiver", func(p *Proc) {
		for {
			pkt, err := dst.Recv(p, 200*time.Millisecond)
			if err != nil {
				return
			}
			order = append(order, pkt.Seq)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 0, 3}
	if len(order) != len(want) {
		t.Fatalf("received %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("received %v, want %v", order, want)
		}
	}
	if n.Adv.Holds != 1 || n.Adv.Flushes != 0 {
		t.Errorf("adv counters: %+v", n.Adv)
	}
}

// A held packet that nothing overtakes must be released by the flush bound,
// not lost.
func TestAdversaryHoldFlushes(t *testing.T) {
	adv := params.Adversary{
		ReorderFlush: 10 * time.Millisecond,
		Script: func(p *wire.Packet) params.Mangle {
			return params.Mangle{Hold: 5}
		},
	}
	k, n, src, dst := newAdvNet(t, adv, 1)
	var arrival time.Duration
	k.Go("sender", func(p *Proc) { src.Send(p, dst, dataPkt(0)) })
	k.Go("receiver", func(p *Proc) {
		if _, err := dst.Recv(p, 500*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		arrival = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Adv.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", n.Adv.Flushes)
	}
	// Held at C+T+τ, flushed 10 ms later, plus the receiver's copy-out C.
	cost := params.Standalone3Com()
	want := cost.C() + cost.T() + cost.Propagation + 10*time.Millisecond + cost.C()
	if arrival != want {
		t.Errorf("arrival at %v, want %v", arrival, want)
	}
}

// Scripted duplication delivers the packet twice; the clone of a
// payload-carrying packet must not alias the original.
func TestAdversaryScriptedDuplicate(t *testing.T) {
	adv := params.Adversary{Script: func(p *wire.Packet) params.Mangle {
		return params.Mangle{Duplicate: p.Type == wire.TypeData}
	}}
	k, n, src, dst := newAdvNet(t, adv, 1)
	var got []*wire.Packet
	k.Go("sender", func(p *Proc) {
		src.Send(p, dst, &wire.Packet{Type: wire.TypeData, Seq: 7, Total: 1,
			Payload: []byte{1, 2, 3}, VirtualSize: params.DataPacketSize})
	})
	k.Go("receiver", func(p *Proc) {
		for {
			pkt, err := dst.Recv(p, 100*time.Millisecond)
			if err != nil {
				return
			}
			got = append(got, pkt)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("received %d packets, want 2", len(got))
	}
	if got[0] == got[1] || &got[0].Payload[0] == &got[1].Payload[0] {
		t.Error("payload-carrying duplicate must be a deep clone")
	}
	if n.Adv.Dups != 1 || n.Adv.DataDups != 1 {
		t.Errorf("adv counters: %+v", n.Adv)
	}
}

// Corruption of a payload-carrying packet goes through the real wire codec:
// a single-bit flip must be rejected by the checksum (or a structural check)
// and counted as a corruption drop.
func TestAdversaryCorruptionFiresChecksum(t *testing.T) {
	for bit := int64(0); bit < 64; bit += 7 {
		b := bit
		adv := params.Adversary{Script: func(p *wire.Packet) params.Mangle {
			return params.Mangle{Corrupt: true, CorruptBit: b}
		}}
		k, n, src, dst := newAdvNet(t, adv, 1)
		k.Go("sender", func(p *Proc) {
			src.Send(p, dst, &wire.Packet{Type: wire.TypeData, Seq: 1, Total: 2,
				Payload: []byte("some payload bytes")})
		})
		k.Go("receiver", func(p *Proc) {
			if _, err := dst.Recv(p, 50*time.Millisecond); err == nil {
				t.Errorf("bit %d: corrupted packet delivered", b)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if dst.Counters.CorruptDrops != 1 || n.Adv.Corrupts != 1 || n.Adv.Passed != 0 {
			t.Errorf("bit %d: corrupt drop not counted: %+v %+v", b, dst.Counters, n.Adv)
		}
	}
}

// Payload-elided packets have no frame to mangle: corruption models the
// checksum rejecting them directly.
func TestAdversaryCorruptionElided(t *testing.T) {
	adv := params.Adversary{Script: func(p *wire.Packet) params.Mangle {
		return params.Mangle{Corrupt: true}
	}}
	k, n, src, dst := newAdvNet(t, adv, 1)
	k.Go("sender", func(p *Proc) { src.Send(p, dst, dataPkt(0)) })
	k.Go("receiver", func(p *Proc) {
		if _, err := dst.Recv(p, 50*time.Millisecond); err == nil {
			t.Error("corrupted elided packet delivered")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Counters.CorruptDrops != 1 || n.Adv.Corrupts != 1 {
		t.Errorf("counters: %+v %+v", dst.Counters, n.Adv)
	}
}

// Jitter delays delivery without loss, and the delay is bounded by JitterMax.
func TestAdversaryJitterDelaysDelivery(t *testing.T) {
	adv := params.Adversary{JitterMax: 2 * time.Millisecond}
	k, n, src, dst := newAdvNet(t, adv, 3)
	const pkts = 16
	var arrivals int
	k.Go("sender", func(p *Proc) {
		for i := 0; i < pkts; i++ {
			src.Send(p, dst, dataPkt(uint32(i)))
			p.Sleep(3 * time.Millisecond) // spaced out: no overruns
		}
	})
	k.Go("receiver", func(p *Proc) {
		for {
			if _, err := dst.Recv(p, 50*time.Millisecond); err != nil {
				return
			}
			arrivals++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != pkts {
		t.Errorf("arrivals = %d, want %d (jitter must not lose packets)", arrivals, pkts)
	}
	if n.Adv.Delays != pkts {
		t.Errorf("Delays = %d, want %d", n.Adv.Delays, pkts)
	}
}

// Adversary draws must be reproducible for a fixed seed, and the adversary
// RNG must not mirror the loss-model RNG given the same base seed.
func TestAdversaryDeterminismAndSeedMixing(t *testing.T) {
	adv := params.Adversary{Loss: params.LossModel{PNet: 0.2}, DuplicateProb: 0.2}
	run := func(seed int64) (AdvCounters, Counters) {
		k, n, src, dst := newAdvNet(t, adv, seed)
		k.Go("sender", func(p *Proc) {
			for i := 0; i < 64; i++ {
				src.Send(p, dst, dataPkt(uint32(i)))
			}
		})
		k.Go("receiver", func(p *Proc) {
			for {
				if _, err := dst.Recv(p, 50*time.Millisecond); err != nil {
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Adv, dst.Counters
	}
	a1, c1 := run(42)
	a2, c2 := run(42)
	if a1 != a2 || c1 != c2 {
		t.Fatalf("same seed diverged: %+v vs %+v", a1, a2)
	}
	if a1.Drops == 0 || a1.Dups == 0 {
		t.Errorf("knobs never fired: %+v", a1)
	}

	// Same base seed for network loss and adversary: the two processes must
	// not be draw-for-draw correlated (the mixing in NewState).
	k, n, src, dst := newTestNet(t, params.Standalone3Com(), params.LossModel{PNet: 0.2}, 42)
	if err := n.SetAdversary(params.Adversary{Loss: params.LossModel{PNet: 0.2}}, 42); err != nil {
		t.Fatal(err)
	}
	k.Go("sender", func(p *Proc) {
		for i := 0; i < 128; i++ {
			src.Send(p, dst, dataPkt(uint32(i)))
		}
	})
	k.Go("receiver", func(p *Proc) {
		for {
			if _, err := dst.Recv(p, 50*time.Millisecond); err != nil {
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// If the streams mirrored each other, every adversary survivor would
	// face an identical draw in the network loss model and the network
	// would drop none of its own (or all of them, depending on phase).
	netDrops := dst.Counters.WireDrops - n.Adv.Drops
	if netDrops == 0 {
		t.Errorf("network loss dropped nothing after the adversary: correlated streams? %+v %+v", dst.Counters, n.Adv)
	}
}
