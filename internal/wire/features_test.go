package wire

import (
	"math/bits"
	"strings"
	"testing"
)

// TestReqFeatureBitRegistry is the exhaustiveness check the registry
// promises: every allocation is well-formed, no two allocations in the
// same byte namespace overlap, and the flags byte is exactly as full as
// its documentation claims — so the next feature bit must go to xflags,
// and two branches cannot grab the same bit without one of them failing
// this test.
func TestReqFeatureBitRegistry(t *testing.T) {
	taken := map[string]uint8{}
	names := map[string]bool{}
	for _, f := range ReqFeatureBits {
		if f.Mask == 0 {
			t.Errorf("feature %q allocates no bits", f.Name)
		}
		if f.Byte != "flags" && f.Byte != "xflags" {
			t.Errorf("feature %q names unknown byte namespace %q", f.Name, f.Byte)
			continue
		}
		key := f.Byte + "/" + f.Name
		if names[key] {
			t.Errorf("feature %q registered twice in %s", f.Name, f.Byte)
		}
		names[key] = true
		if overlap := taken[f.Byte] & f.Mask; overlap != 0 {
			t.Errorf("feature %q overlaps earlier allocation in %s byte: mask %08b collides on %08b",
				f.Name, f.Byte, f.Mask, overlap)
		}
		taken[f.Byte] |= f.Mask
	}
	// The flags byte is fully allocated: three flag bits plus the five-bit
	// policy field. If this fails low, a constant was added without a
	// registry row; it cannot fail high without an overlap error above.
	if taken["flags"] != 0xFF {
		t.Errorf("flags byte allocation %08b, want 11111111 (fully allocated)", taken["flags"])
	}
	// xflags must track its constants too: the union of registered masks
	// is a contiguous run from bit 0 (allocations don't skip bits).
	x := taken["xflags"]
	if x == 0 {
		t.Error("no xflags allocations registered")
	}
	if x&(x+1) != 0 {
		t.Errorf("xflags allocation %08b skips bits", x)
	}
	if got := bits.OnesCount8(x & reqXflagCopy); got != 1 {
		t.Errorf("copy xflag allocates %d bits", got)
	}
}

// TestReqCopyExtension pins the second trailing extension: copy + target
// round-trip, old decoders that stop at the name extension stay intact,
// and malformed extensions error rather than misread.
func TestReqCopyExtension(t *testing.T) {
	r := Req{Bytes: 4 << 20, Chunk: 1000, Name: "models/weights.bin",
		Copy: true, Target: "10.0.0.7:7025", TrMicros: 200_000}
	got, err := DecodeReq(EncodeReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("copy round trip %+v -> %+v", r, got)
	}
	// A copy REQ with no name still needs the second extension, so the
	// name extension is emitted with a zero length byte in front of it.
	anon := Req{Bytes: 1, Copy: true, Target: "b:1"}
	if got, err := DecodeReq(EncodeReq(anon)); err != nil || got != anon {
		t.Errorf("anonymous copy round trip %+v -> %+v, %v", anon, got, err)
	}
	if n := len(EncodeReq(anon)); n != reqLen+1+2+len(anon.Target) {
		t.Errorf("anonymous copy REQ is %d bytes", n)
	}
	// A decoder reading only through the name extension sees a plain
	// named REQ — the copy ask degrades to absent, never to a misread.
	enc := EncodeReq(r)
	nameOnly, err := DecodeReq(enc[:reqLen+1+len(r.Name)])
	if err != nil {
		t.Fatal(err)
	}
	if nameOnly.Copy || nameOnly.Target != "" || nameOnly.Name != r.Name {
		t.Errorf("name-prefix decode = %+v", nameOnly)
	}
	// A zero second-extension length byte means "no extension yet".
	empty := append(append([]byte{}, enc[:reqLen+1+len(r.Name)]...), 0)
	if got, err := DecodeReq(empty); err != nil || got.Copy {
		t.Errorf("zero-length second extension: %+v, %v", got, err)
	}
	// A truncated second extension is malformed, not silently shortened.
	if _, err := DecodeReq(enc[:len(enc)-2]); err == nil {
		t.Error("truncated second extension should error")
	}
	// Unknown xflags bits are ignored (future features decode cleanly).
	fut := append([]byte{}, enc...)
	fut[reqLen+1+len(r.Name)+1] |= 0x80
	if got, err := DecodeReq(fut); err != nil || got != r {
		t.Errorf("future xflags bit: %+v, %v", got, err)
	}
	// Max-length targets encode; longer ones are a caller bug.
	long := Req{Bytes: 1, Copy: true, Target: strings.Repeat("x", MaxReqTarget)}
	if got, err := DecodeReq(EncodeReq(long)); err != nil || len(got.Target) != MaxReqTarget {
		t.Errorf("max-length target: %d bytes, %v", len(got.Target), err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-long target should panic at encode")
			}
		}()
		EncodeReq(Req{Bytes: 1, Copy: true, Target: strings.Repeat("x", MaxReqTarget+1)})
	}()
}
