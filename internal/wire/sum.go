package wire

// SumAcc accumulates the Internet checksum of a byte stream delivered as
// chunks in any order — the running "overall software checksum" a streaming
// receiver keeps so a multi-gigabyte transfer never has to be buffered whole.
//
// The RFC 1071 one's-complement sum is commutative and associative over
// 16-bit words, so a chunk's contribution depends only on its bytes and the
// parity of its byte offset in the stream: a chunk starting at an odd offset
// contributes its standalone sum with the two bytes of every word swapped
// (the classic byte-order/alignment identity). AddAt exploits that, which is
// what lets a blast receiver — whose packets arrive in any order — fold each
// chunk in as it lands. Chunks must tile the stream exactly once; Sum16 then
// equals Checksum over the concatenated bytes.
//
// The zero value is ready to use.
type SumAcc struct {
	sum uint64
}

// AddAt folds in one chunk of the stream located at byte offset off.
func (a *SumAcc) AddAt(off int, b []byte) {
	s := fold16(sumWords(b))
	if off&1 == 1 {
		s = s<<8 | s>>8 // odd offset: every byte swaps word halves
	}
	a.sum += uint64(s)
}

// Merge folds another accumulator's contribution into this one. Each
// accumulator must have absorbed a disjoint set of chunks of the same
// stream (with AddAt offsets in that stream's coordinates); afterwards this
// accumulator's Sum16 covers their union. This is how a striped receiver
// combines per-stripe checksums into the whole-transfer checksum without
// any cross-stripe synchronisation during the transfer.
func (a *SumAcc) Merge(b SumAcc) { a.sum += b.sum }

// AddChecksumAt folds in the finished Internet checksum of a contiguous
// byte range starting at stream offset off — the zero-copy, zero-rescan way
// to merge a stripe's already-computed whole-range checksum (for example
// RecvResult.Checksum, accumulated in the stripe's own coordinates) into
// the stream's: un-complement back to the raw folded sum, swap bytes if the
// range starts at an odd stream offset, accumulate. Each range must tile
// the stream exactly once, like AddAt chunks.
func (a *SumAcc) AddChecksumAt(off int, checksum uint16) {
	s := ^checksum
	if off&1 == 1 {
		s = s<<8 | s>>8 // odd offset: every byte swaps word halves
	}
	a.sum += uint64(s)
}

// Sum16 returns the Internet checksum of the stream accumulated so far.
func (a *SumAcc) Sum16() uint16 {
	return ^fold16(a.sum)
}

// Reset clears the accumulator for reuse.
func (a *SumAcc) Reset() { a.sum = 0 }
