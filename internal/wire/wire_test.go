package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Type:    TypeData,
		Flags:   FlagLast,
		Attempt: 3,
		Trans:   0xdeadbeef,
		Seq:     41,
		Total:   64,
		Payload: []byte("hello, ethernet"),
	}
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+len(p.Payload) {
		t.Fatalf("encoded length = %d", len(buf))
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != p.Type || q.Flags != p.Flags || q.Attempt != p.Attempt ||
		q.Trans != p.Trans || q.Seq != p.Seq || q.Total != p.Total ||
		!bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
}

// Property: any packet with a valid type and payload round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(typ uint8, flags, attempt uint8, trans, seq, total uint32, payload []byte) bool {
		p := &Packet{
			Type:    Type(typ%4) + TypeData,
			Flags:   flags,
			Attempt: attempt,
			Trans:   trans,
			Seq:     seq,
			Total:   total,
		}
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		if len(payload) > 0 {
			p.Payload = payload
		}
		buf, err := p.Encode(nil)
		if err != nil {
			return false
		}
		q, err := Decode(buf)
		if err != nil {
			return false
		}
		return q.Type == p.Type && q.Flags == p.Flags && q.Attempt == p.Attempt &&
			q.Trans == p.Trans && q.Seq == p.Seq && q.Total == p.Total &&
			bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte("prefix")
	p := &Packet{Type: TypeAck, Seq: 7}
	buf, err := p.Encode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Error("Encode must append to dst")
	}
	if _, err := Decode(buf[len(prefix):]); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := &Packet{Type: TypeData, Seq: 1, Total: 2, Payload: []byte{1, 2, 3}}
	good, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, err := Decode(good[:HeaderSize-1]); !errors.Is(err, ErrShort) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := Decode(bad); !errors.Is(err, ErrMagic) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[3] = 0
		if _, err := Decode(bad); !errors.Is(err, ErrType) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		if _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrShort) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("trailing-junk", func(t *testing.T) {
		// Datagram semantics: exactly one packet per buffer. Zero padding in
		// particular must be rejected — the Internet checksum alone cannot
		// see it (RFC 1071 sums are zero-padding invariant), which is how a
		// corrupted length field would otherwise smuggle bytes in or out.
		long := append(append([]byte(nil), good...), 0, 0)
		if _, err := Decode(long); !errors.Is(err, ErrLength) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("payload-too-large", func(t *testing.T) {
		// Jumbo-frame payloads beyond the paper's MaxPayload are legal (the
		// substrate MTU check gates them); the codec's hard bound is the
		// largest UDP datagram.
		big := &Packet{Type: TypeData, Payload: make([]byte, AbsMaxPayload+1)}
		if _, err := big.Encode(nil); !errors.Is(err, ErrPayload) {
			t.Errorf("got %v", err)
		}
		jumbo := &Packet{Type: TypeData, Payload: make([]byte, MaxPayload+1)}
		if _, err := jumbo.Encode(nil); err != nil {
			t.Errorf("jumbo payload rejected: %v", err)
		}
	})
}

// Property: flipping any single byte of an encoded packet is detected (by
// the checksum or a structural check). This is the paper's reliability
// baseline for header integrity.
func TestChecksumDetectsCorruption(t *testing.T) {
	p := &Packet{Type: TypeData, Trans: 1, Seq: 5, Total: 9, Payload: []byte("payload bytes here")}
	good, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x5a
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Worked example from RFC 1071 §3: the one's-complement sum of
	// 00 01 f2 03 f4 f5 f6 f7 is ddf2, so the checksum is ^ddf2 = 220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("checksum = %04x, want 220d", got)
	}
	// Odd length: trailing byte is padded with zero on the right.
	odd := []byte{0x01}
	if got := Checksum(odd); got != ^uint16(0x0100) {
		t.Errorf("odd checksum = %04x", got)
	}
	if got := Checksum(nil); got != 0xffff {
		t.Errorf("empty checksum = %04x, want ffff", got)
	}
}

func TestWireSize(t *testing.T) {
	p := &Packet{Type: TypeData, Payload: make([]byte, 100)}
	if got := p.WireSize(); got != HeaderSize+100 {
		t.Errorf("WireSize = %d", got)
	}
	p.VirtualSize = 1024
	if got := p.WireSize(); got != 1024 {
		t.Errorf("VirtualSize override = %d", got)
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Type: TypeData, Seq: 1, Payload: []byte{1, 2, 3}}
	q := p.Clone()
	q.Payload[0] = 9
	q.Seq = 2
	if p.Payload[0] != 1 || p.Seq != 1 {
		t.Error("clone must not share state")
	}
	// Nil payload stays nil.
	if c := (&Packet{Type: TypeAck}).Clone(); c.Payload != nil {
		t.Error("nil payload should clone to nil")
	}
}

func TestString(t *testing.T) {
	p := &Packet{Type: TypeNak, Trans: 2, Seq: 3, Total: 64}
	s := p.String()
	for _, want := range []string{"NAK", "t2", "seq=3/64"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if got := Type(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestMissingBitmapRoundTrip(t *testing.T) {
	cases := [][]uint32{
		{0},
		{5},
		{1, 2, 3},
		{0, 63},
		{7, 3, 5}, // unsorted input
		{100, 200, 300},
	}
	for _, missing := range cases {
		payload, err := EncodeMissing(missing)
		if err != nil {
			t.Fatalf("%v: %v", missing, err)
		}
		got, err := DecodeMissing(payload)
		if err != nil {
			t.Fatalf("%v: %v", missing, err)
		}
		want := append([]uint32(nil), missing...)
		sortU32(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %v -> %v", missing, got)
		}
	}
}

func sortU32(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Property: random missing sets round-trip through the bitmap.
func TestMissingBitmapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		base := uint32(rng.Intn(1 << 20))
		set := map[uint32]bool{}
		for i := 0; i < n; i++ {
			set[base+uint32(rng.Intn(2000))] = true
		}
		var missing []uint32
		for s := range set {
			missing = append(missing, s)
		}
		payload, err := EncodeMissing(missing)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMissing(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(set) {
			t.Fatalf("decoded %d, want %d", len(got), len(set))
		}
		for _, s := range got {
			if !set[s] {
				t.Fatalf("decoded unexpected seq %d", s)
			}
		}
	}
}

func TestMissingBitmapErrors(t *testing.T) {
	if _, err := EncodeMissing(nil); err == nil {
		t.Error("empty missing should error")
	}
	if _, err := EncodeMissing([]uint32{0, MaxMissingBits + 5}); err == nil {
		t.Error("oversized span should error")
	}
	if _, err := DecodeMissing([]byte{1, 2}); err == nil {
		t.Error("short payload should error")
	}
	// count = 0
	bad := make([]byte, 8)
	if _, err := DecodeMissing(bad); err == nil {
		t.Error("zero count should error")
	}
	// count says 16 bits but no bitmap bytes follow
	bad2 := make([]byte, 8)
	bad2[7] = 16
	if _, err := DecodeMissing(bad2); err == nil {
		t.Error("truncated bitmap should error")
	}
	// valid length, but all-zero bitmap
	bad3 := make([]byte, 8+2)
	bad3[7] = 16
	if _, err := DecodeMissing(bad3); err == nil {
		t.Error("empty bitmap should error")
	}
}

func TestReqRoundTrip(t *testing.T) {
	r := Req{Bytes: 1 << 30, Chunk: 1000, Strategy: 3, Protocol: 2,
		Push: true, Window: 64, TrMicros: 173_000}
	got, err := DecodeReq(EncodeReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip %+v -> %+v", r, got)
	}
	// Pull direction round-trips too.
	r.Push = false
	if got, _ := DecodeReq(EncodeReq(r)); got != r {
		t.Errorf("pull round trip %+v -> %+v", r, got)
	}
	if _, err := DecodeReq([]byte{1, 2, 3}); err == nil {
		t.Error("short req should error")
	}
	// A REQ still fits in an ack-sized 64-byte packet.
	if HeaderSize+len(EncodeReq(r)) > 64 {
		t.Errorf("REQ packet is %d bytes", HeaderSize+len(EncodeReq(r)))
	}
	// Stripe + adaptive fields round-trip independently of push.
	r = Req{Bytes: 8 << 20, Chunk: 1000, Adaptive: 1,
		OffsetChunks: 16384, Total: 64 << 20, Window: 128}
	got, err = DecodeReq(EncodeReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("stripe round trip %+v -> %+v", r, got)
	}
	// Every policy id the flags byte can carry round-trips, and a
	// pre-policy encoding (the lone adaptive flag bit) decodes as policy 1,
	// its original AIMD meaning.
	for id := uint8(1); id <= MaxReqPolicy; id++ {
		r.Adaptive = id
		if got, _ := DecodeReq(EncodeReq(r)); got.Adaptive != id {
			t.Errorf("policy %d decoded as %d", id, got.Adaptive)
		}
	}
	legacy := EncodeReq(Req{Bytes: 1 << 20, Chunk: 1000})
	legacy[14] |= 1 << 1 // reqFlagAdaptive, as a pre-policy encoder set it
	if got, _ := DecodeReq(legacy); got.Adaptive != 1 {
		t.Errorf("legacy adaptive bit decoded as policy %d, want 1", got.Adaptive)
	}
	if got.Offset() != 16384*1000 {
		t.Errorf("Offset() = %d", got.Offset())
	}
	if got.StreamBytes() != 64<<20 {
		t.Errorf("StreamBytes() = %d", got.StreamBytes())
	}
	if un := (Req{Bytes: 99}); un.StreamBytes() != 99 {
		t.Errorf("unstriped StreamBytes() = %d", un.StreamBytes())
	}
}

func TestReqNameExtension(t *testing.T) {
	// Nameless requests keep the original ack-sized 39-byte encoding.
	if n := len(EncodeReq(Req{Bytes: 1})); n != 39 {
		t.Errorf("nameless REQ is %d bytes, want 39", n)
	}
	// Named + stat round-trips, including alongside stripe fields.
	r := Req{Bytes: 4 << 20, Chunk: 1400, Name: "models/weights.bin",
		Stat: true, OffsetChunks: 512, Total: 16 << 20, Window: 32}
	got, err := DecodeReq(EncodeReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("named round trip %+v -> %+v", r, got)
	}
	// Old decoders only read the fixed 39 bytes; the extension must leave
	// them intact, and a new decoder must ignore bytes past the extension.
	enc := EncodeReq(r)
	fixed, err := DecodeReq(enc[:39])
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Bytes != r.Bytes || fixed.Name != "" {
		t.Errorf("fixed prefix decode = %+v", fixed)
	}
	// Bytes past the last complete extension are future room: a decoder
	// must ignore them. (Bytes directly after the name extension are the
	// second extension — see TestReqCopyExtension — so the future room now
	// sits behind that.)
	withExt2 := r
	withExt2.Copy, withExt2.Target = true, "peer:7025"
	enc2 := EncodeReq(withExt2)
	future, err := DecodeReq(append(append([]byte{}, enc2...), 0xAA, 0xBB))
	if err != nil || future != withExt2 {
		t.Errorf("trailing future bytes: %+v, %v", future, err)
	}
	// A truncated name extension is malformed, not silently shortened.
	if _, err := DecodeReq(enc[:len(enc)-3]); err == nil {
		t.Error("truncated name extension should error")
	}
	// Max-length names encode; longer ones are a caller bug.
	long := Req{Bytes: 1, Name: strings.Repeat("x", MaxReqName)}
	if got, err := DecodeReq(EncodeReq(long)); err != nil || len(got.Name) != MaxReqName {
		t.Errorf("max-length name: %d bytes, %v", len(got.Name), err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-long name should panic at encode")
			}
		}()
		EncodeReq(Req{Bytes: 1, Name: strings.Repeat("x", MaxReqName+1)})
	}()
	// ValidReqName gates what EncodeReq accepts.
	for name, want := range map[string]bool{
		"":                                false,
		"a":                               true,
		"dir/file":                        true,
		"bad\x00name":                     false,
		strings.Repeat("x", MaxReqName):   true,
		strings.Repeat("x", MaxReqName+1): false,
	} {
		if ValidReqName(name) != want {
			t.Errorf("ValidReqName(%q) != %v", name, want)
		}
	}
}

// The paper's NAK for a 64-packet blast must fit in an ack-sized packet.
func TestNakFitsInAckPacket(t *testing.T) {
	var missing []uint32
	for i := uint32(0); i < 64; i += 2 {
		missing = append(missing, i)
	}
	payload, err := EncodeMissing(missing)
	if err != nil {
		t.Fatal(err)
	}
	if HeaderSize+len(payload) > 64 {
		t.Errorf("NAK packet is %d bytes, exceeds the 64-byte ack size", HeaderSize+len(payload))
	}
}
