package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and anything
// that decodes successfully must re-encode to a buffer that decodes to the
// same packet (when it carries no trailing junk).
func FuzzDecode(f *testing.F) {
	// Seed with valid packets of each type and classic corruptions.
	for _, p := range []*Packet{
		{Type: TypeData, Trans: 1, Seq: 5, Total: 64, Payload: []byte("seed")},
		{Type: TypeAck, Trans: 2, Seq: 64, Total: 64, Flags: FlagAllReceived},
		{Type: TypeNak, Trans: 3, Seq: 7},
		{Type: TypeReq, Trans: 4, Payload: EncodeReq(Req{Bytes: 1000, Chunk: 100})},
	} {
		buf, err := p.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 2 {
			bad := append([]byte(nil), buf...)
			bad[len(bad)/2] ^= 0x40
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xB1}, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		out, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		q, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if q.Type != p.Type || q.Trans != p.Trans || q.Seq != p.Seq ||
			q.Total != p.Total || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}

// FuzzDecodeMissing: the selective-NAK bitmap decoder must never panic and
// must round-trip whatever it accepts.
func FuzzDecodeMissing(f *testing.F) {
	good, _ := EncodeMissing([]uint32{1, 5, 9})
	f.Add(good)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 8, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		missing, err := DecodeMissing(data)
		if err != nil {
			return
		}
		re, err := EncodeMissing(missing)
		if err != nil {
			t.Fatalf("accepted bitmap failed to re-encode: %v", err)
		}
		back, err := DecodeMissing(re)
		if err != nil || len(back) != len(missing) {
			t.Fatalf("bitmap not a fixed point: %v %v", back, err)
		}
	})
}
