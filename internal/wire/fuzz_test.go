package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and anything
// that decodes successfully must re-encode to a buffer that decodes to the
// same packet (when it carries no trailing junk).
func FuzzDecode(f *testing.F) {
	// Seed with valid packets of each type and classic corruptions.
	for _, p := range []*Packet{
		{Type: TypeData, Trans: 1, Seq: 5, Total: 64, Payload: []byte("seed")},
		{Type: TypeAck, Trans: 2, Seq: 64, Total: 64, Flags: FlagAllReceived},
		{Type: TypeNak, Trans: 3, Seq: 7},
		{Type: TypeReq, Trans: 4, Payload: EncodeReq(Req{Bytes: 1000, Chunk: 100})},
	} {
		buf, err := p.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 2 {
			bad := append([]byte(nil), buf...)
			bad[len(bad)/2] ^= 0x40
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xB1}, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		out, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		q, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if q.Type != p.Type || q.Trans != p.Trans || q.Seq != p.Seq ||
			q.Total != p.Total || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}

// FuzzCorrupt: the corruption round-trip the adversary subsystem relies on.
// A single bit flip anywhere in a well-formed datagram must never decode to
// a valid packet: every byte of the exact-length buffer is covered by the
// checksum or a structural check (the strict length rule closes the RFC 1071
// zero-padding blind spot, so there are no uncovered bytes for the flip to
// miss). Restoring the bit must restore decodability.
func FuzzCorrupt(f *testing.F) {
	f.Add([]byte("some payload"), uint32(5), uint8(0), uint16(40))
	f.Add([]byte{}, uint32(0), uint8(3), uint16(0))
	f.Add(bytes.Repeat([]byte{0}, 200), uint32(9), uint8(1), uint16(150))
	f.Add([]byte{0xff}, uint32(1), uint8(7), uint16(191))

	f.Fuzz(func(t *testing.T, payload []byte, seq uint32, meta uint8, bit uint16) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		p := &Packet{
			Type:    Type(1 + meta%4), // TypeData..TypeReq
			Flags:   meta >> 2,
			Trans:   seq ^ 0xa5a5,
			Seq:     seq,
			Total:   seq + 1,
			Payload: payload,
		}
		buf, err := p.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		b := int(bit) % (len(buf) * 8)
		buf[b/8] ^= 1 << (b % 8)
		if q, err := Decode(buf); err == nil {
			t.Fatalf("single-bit flip at bit %d of %d bytes decoded to %v", b, len(buf), q)
		}
		buf[b/8] ^= 1 << (b % 8)
		q, err := Decode(buf)
		if err != nil {
			t.Fatalf("restored frame no longer decodes: %v", err)
		}
		if q.Type != p.Type || q.Seq != p.Seq || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("restored frame decoded to a different packet")
		}
	})
}

// FuzzDecodeMissing: the selective-NAK bitmap decoder must never panic and
// must round-trip whatever it accepts.
func FuzzDecodeMissing(f *testing.F) {
	good, _ := EncodeMissing([]uint32{1, 5, 9})
	f.Add(good)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 8, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		missing, err := DecodeMissing(data)
		if err != nil {
			return
		}
		re, err := EncodeMissing(missing)
		if err != nil {
			t.Fatalf("accepted bitmap failed to re-encode: %v", err)
		}
		back, err := DecodeMissing(re)
		if err != nil || len(back) != len(missing) {
			t.Fatalf("bitmap not a fixed point: %v %v", back, err)
		}
	})
}
