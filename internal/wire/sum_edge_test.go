package wire

import (
	"math/rand"
	"testing"
)

// Targeted AddChecksumAt edge cases: the randomized suites cover typical
// cuts, these pin the boundaries a striped transfer can actually produce —
// odd-offset stripe starts, a zero-length final stripe, single-byte and
// single-chunk stripes — plus fold-order independence (a striped merger
// folds per-stripe checksums in whatever order stripes complete).
func TestAddChecksumAtEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 257) // odd length: the final range ends on an odd byte
	rng.Read(data)

	cases := []struct {
		name string
		cuts []int // range boundaries; consecutive pairs are [lo, hi)
	}{
		{"odd-boundaries", []int{0, 7, 8, 21, 21, 100, 257}},  // odd starts + an empty mid-range
		{"zero-length-final", []int{0, 257, 257}},             // empty final stripe
		{"single-byte-stripes", []int{0, 1, 2, 3, 4, 5, 257}}, // 1-byte ranges at even and odd offsets
		{"whole-stream", []int{0, 257}},                       // one stripe
		{"empty-leading", []int{0, 0, 0, 128, 257}},           // empty ranges at offset 0
	}
	want := Checksum(data)
	for _, tc := range cases {
		type rng16 struct {
			off int
			sum uint16
		}
		ranges := make([]rng16, 0, len(tc.cuts)-1)
		for i := 0; i+1 < len(tc.cuts); i++ {
			lo, hi := tc.cuts[i], tc.cuts[i+1]
			ranges = append(ranges, rng16{lo, Checksum(data[lo:hi])})
		}
		// Forward, reverse and shuffled fold orders must all agree: the
		// one's-complement sum is commutative, and the merger relies on it.
		orders := [][]int{make([]int, len(ranges)), make([]int, len(ranges)), rand.New(rand.NewSource(3)).Perm(len(ranges))}
		for i := range ranges {
			orders[0][i] = i
			orders[1][i] = len(ranges) - 1 - i
		}
		for oi, order := range orders {
			var acc SumAcc
			for _, i := range order {
				acc.AddChecksumAt(ranges[i].off, ranges[i].sum)
			}
			if got := acc.Sum16(); got != want {
				t.Errorf("%s order %d: merged %04x, want %04x", tc.name, oi, got, want)
			}
		}
	}

	// A zero-length range is a no-op whether its checksum arrives as the
	// empty stream's checksum or as a zero value (an engine that never ran
	// reports RecvResult.Checksum == 0).
	var acc SumAcc
	acc.AddAt(0, data)
	base := acc.Sum16()
	acc.AddChecksumAt(100, Checksum(nil))
	if got := acc.Sum16(); got != base {
		t.Errorf("empty-range checksum changed the sum: %04x vs %04x", got, base)
	}
	acc.AddChecksumAt(101, 0)
	if got := acc.Sum16(); got != base {
		t.Errorf("zero-value checksum changed the sum: %04x vs %04x", got, base)
	}
}
