// Package wire defines the packet format spoken by every protocol in this
// repository and its binary codec.
//
// The paper's standalone experiments add no header beyond the Ethernet data
// link header (§2.1.1); the V kernel adds a small interkernel header (§2.2).
// This package plays the role of that interkernel header: a fixed 24-byte
// header carrying the packet type, transfer demultiplexing id, sequence
// number, total packet count, retransmission round, flags, a payload length
// and an Internet checksum (the "overall software checksum" Spector suggests
// for multi-packet transfers is provided separately by Checksum over the
// whole transfer).
//
// Simulated runs elide payload bytes and set VirtualSize so that a data
// packet occupies exactly params.DataPacketSize on the simulated wire and an
// ack exactly params.AckPacketSize, reproducing the paper's arithmetic.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type identifies the role of a packet.
type Type uint8

// Packet types.
const (
	// TypeData carries a chunk of the transfer.
	TypeData Type = 1 + iota
	// TypeAck is a positive acknowledgement. Seq holds the next sequence
	// number the receiver expects (cumulative); Seq == Total acknowledges
	// the whole transfer.
	TypeAck
	// TypeNak is a negative acknowledgement. For go-back-n it carries the
	// first missing sequence number in Seq; for selective retransmission it
	// additionally carries a bitmap of missing packets in the payload.
	TypeNak
	// TypeReq asks the peer to start a transfer (used by MoveFrom, where
	// the data flows from the remote machine).
	TypeReq
	// TypeBusy is the server's admission refusal: the REQ was valid but the
	// server is at its session cap (or draining) and will not open a
	// session. Seq carries a retry-after hint in milliseconds; clients back
	// off at least that long before re-requesting. Best-effort and
	// ack-sized — a lost BUSY just means the client rediscovers the
	// condition on its next REQ retransmission.
	TypeBusy
)

// String returns the conventional short name of the type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeNak:
		return "NAK"
	case TypeReq:
		return "REQ"
	case TypeBusy:
		return "BUSY"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Flag bits.
const (
	// FlagLast marks the final data packet of a transmission round; its
	// arrival prompts the receiver to respond (§3.2.3: "the last packet is
	// sent reliably").
	FlagLast uint8 = 1 << iota
	// FlagAllReceived is set on a TypeAck that acknowledges the entire
	// transfer.
	FlagAllReceived
	// FlagDone is set on a best-effort TypeAck the *sender* emits after
	// the final acknowledgement arrives: it releases the receiver from its
	// post-completion linger immediately instead of waiting out the linger
	// timeout (which remains the fallback when the FIN is lost). It is
	// sent after the elapsed-time measurement closes, so it never affects
	// the paper's numbers.
	FlagDone
)

// Codec constants.
const (
	// Magic identifies blastlan packets on the wire.
	Magic uint16 = 0xB1A5
	// Version is the codec version.
	Version uint8 = 1
	// HeaderSize is the encoded header length in bytes.
	HeaderSize = 24
	// MaxPayload is the payload that keeps a frame within the paper's
	// 1536-byte maximum Ethernet packet (§2.1.2) — the default bound for
	// standard-frame transfers (NAK bitmaps, the paper's experiments).
	MaxPayload = 1536 - HeaderSize
	// AbsMaxPayload is the codec's hard payload bound: the largest UDP/IPv4
	// datagram (65507 bytes) minus the header. Transfers over jumbo-frame
	// links may use chunk sizes between MaxPayload and this limit; the
	// substrate validates the frame against its own MTU (see
	// udplan.Endpoint.ValidateConfig).
	AbsMaxPayload = 65507 - HeaderSize
)

// FrameBytes returns the packet's on-wire datagram size: header plus
// payload, exactly what Encode/EncodeInto produce. It names the segment-size
// invariant the GSO datapath relies on: every mid-window data frame of a
// transfer has the same FrameBytes (HeaderSize + ChunkSize), and the only
// shorter data frame — the transfer's tail chunk — always carries FlagLast,
// which batching substrates flush separately. A flushed frame ring is
// therefore runs of equal-sized frames with at most one shorter trailing
// frame: precisely the shape a UDP_SEGMENT superbuffer may carry (see
// internal/udplan's GSO tier and core's geometry test).
func FrameBytes(p *Packet) int { return HeaderSize + len(p.Payload) }

// Codec errors.
var (
	ErrShort    = errors.New("wire: buffer too short")
	ErrLength   = errors.New("wire: datagram length mismatch")
	ErrMagic    = errors.New("wire: bad magic")
	ErrVersion  = errors.New("wire: unsupported version")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrPayload  = errors.New("wire: payload too large")
	ErrType     = errors.New("wire: unknown packet type")
)

// Packet is the unit of exchange between protocol engines. It is used both
// encoded (real sockets) and in-memory (simulation).
type Packet struct {
	Type    Type
	Flags   uint8
	Attempt uint8  // retransmission round, for diagnostics (saturates at 255)
	Trans   uint32 // transfer id, for demultiplexing
	Seq     uint32 // sequence number / cumulative ack / first missing
	Total   uint32 // number of data packets in the transfer

	// Payload is the chunk bytes (TypeData), the missing-packet bitmap
	// (selective TypeNak) or the transfer request parameters (TypeReq).
	Payload []byte

	// VirtualSize, when non-zero, is the size in bytes this packet occupies
	// on a *simulated* wire. It is never encoded. Simulation runs elide
	// payload bytes and carry sizes here instead so that the paper's packet
	// sizes are reproduced exactly.
	VirtualSize int

	// SimMissing carries the decoded selective-NAK missing list for
	// simulated packets whose payload bytes are elided. Never encoded.
	SimMissing []uint32
}

// WireSize returns the number of bytes the packet occupies on the wire:
// VirtualSize if set, otherwise the encoded size.
func (p *Packet) WireSize() int {
	if p.VirtualSize > 0 {
		return p.VirtualSize
	}
	return HeaderSize + len(p.Payload)
}

// IsLast reports whether the packet closes a transmission round.
func (p *Packet) IsLast() bool { return p.Flags&FlagLast != 0 }

// String renders a compact human-readable form used in traces and logs.
func (p *Packet) String() string {
	return fmt.Sprintf("%s t%d seq=%d/%d a%d f%02x %dB",
		p.Type, p.Trans, p.Seq, p.Total, p.Attempt, p.Flags, p.WireSize())
}

// Clone returns a deep copy of the packet. Simulated links deliver clones so
// that a retransmitting sender can safely reuse its buffers, mirroring the
// copy semantics of a real interface.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	if p.SimMissing != nil {
		q.SimMissing = make([]uint32, len(p.SimMissing))
		copy(q.SimMissing, p.SimMissing)
	}
	return &q
}

// Encode appends the encoded packet to dst and returns the result. When dst
// has sufficient capacity the encode performs no allocation, so a reused
// buffer (buf[:0]) makes the round trip allocation-free.
func (p *Packet) Encode(dst []byte) ([]byte, error) {
	if len(p.Payload) > AbsMaxPayload {
		return dst, fmt.Errorf("%w: %d > %d", ErrPayload, len(p.Payload), AbsMaxPayload)
	}
	off := len(dst)
	need := HeaderSize + len(p.Payload)
	if cap(dst)-off >= need {
		dst = dst[:off+need]
	} else {
		dst = append(dst, make([]byte, need)...)
	}
	p.encodeTo(dst[off:])
	return dst, nil
}

// EncodeInto encodes the packet at the start of buf — a fixed, caller-owned
// frame slot — and returns the encoded length. It performs no allocation,
// which is what lets a batched sender encode an entire blast window into a
// reusable frame ring. buf shorter than the encoded packet is an ErrShort.
func (p *Packet) EncodeInto(buf []byte) (int, error) {
	if len(p.Payload) > AbsMaxPayload {
		return 0, fmt.Errorf("%w: %d > %d", ErrPayload, len(p.Payload), AbsMaxPayload)
	}
	need := HeaderSize + len(p.Payload)
	if len(buf) < need {
		return 0, fmt.Errorf("%w: frame needs %d bytes, slot has %d", ErrShort, need, len(buf))
	}
	p.encodeTo(buf[:need])
	return need, nil
}

// encodeTo fills b (whose length is exactly header+payload) with the encoded
// packet, checksum included.
func (p *Packet) encodeTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = Version
	b[3] = uint8(p.Type)
	b[4] = p.Flags
	b[5] = p.Attempt
	binary.BigEndian.PutUint32(b[6:10], p.Trans)
	binary.BigEndian.PutUint32(b[10:14], p.Seq)
	binary.BigEndian.PutUint32(b[14:18], p.Total)
	binary.BigEndian.PutUint16(b[18:20], uint16(len(p.Payload)))
	// b[20:22] checksum, filled below; b[22:24] reserved (zero). Cleared
	// explicitly: a reused buffer carries stale bytes.
	b[20], b[21], b[22], b[23] = 0, 0, 0, 0
	copy(b[HeaderSize:], p.Payload)
	sum := Checksum(b)
	binary.BigEndian.PutUint16(b[20:22], sum)
}

// DecodeInto parses one packet from buf into p, overwriting every field. buf
// must contain exactly one encoded packet (datagram semantics; trailing
// bytes are an ErrLength, see above). The payload aliases buf; callers that
// retain the packet beyond the life of buf must Clone it. DecodeInto
// performs no allocation, so protocol receive loops can reuse one Packet
// value per connection.
func DecodeInto(p *Packet, buf []byte) error {
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: %d < %d", ErrShort, len(buf), HeaderSize)
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Magic {
		return ErrMagic
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	t := Type(buf[3])
	if t < TypeData || t > TypeBusy {
		return fmt.Errorf("%w: %d", ErrType, buf[3])
	}
	plen := int(binary.BigEndian.Uint16(buf[18:20]))
	if len(buf) < HeaderSize+plen {
		return fmt.Errorf("%w: need %d payload bytes, have %d", ErrShort, plen, len(buf)-HeaderSize)
	}
	if len(buf) != HeaderSize+plen {
		// Datagram semantics: the buffer is exactly one packet. Enforcing it
		// closes the Internet checksum's blind spot — a corrupted length
		// field that zero-truncates or zero-extends the summed region would
		// otherwise slip through (RFC 1071 sums are invariant under zero
		// padding).
		return fmt.Errorf("%w: %d bytes for a %d-byte payload", ErrLength, len(buf), plen)
	}
	// Verify the checksum with the checksum field zeroed.
	want := binary.BigEndian.Uint16(buf[20:22])
	if got := checksumZeroed(buf[:HeaderSize+plen], 20); got != want {
		return fmt.Errorf("%w: got %04x want %04x", ErrChecksum, got, want)
	}
	*p = Packet{
		Type:    t,
		Flags:   buf[4],
		Attempt: buf[5],
		Trans:   binary.BigEndian.Uint32(buf[6:10]),
		Seq:     binary.BigEndian.Uint32(buf[10:14]),
		Total:   binary.BigEndian.Uint32(buf[14:18]),
	}
	if plen > 0 {
		p.Payload = buf[HeaderSize : HeaderSize+plen]
	}
	return nil
}

// Decode parses one packet from buf, which must contain exactly one encoded
// packet (datagram semantics). The returned packet aliases buf's payload
// bytes; callers that retain the packet beyond the life of buf must Clone it.
func Decode(buf []byte) (*Packet, error) {
	p := new(Packet)
	if err := DecodeInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// Checksum computes the 16-bit one's-complement Internet checksum (RFC 1071)
// of b. A buffer whose checksum field already holds the Checksum of the rest
// verifies by recomputation in Decode.
func Checksum(b []byte) uint16 {
	return ^fold16(sumWords(b))
}

// sumWords accumulates b as big-endian 16-bit words (a trailing odd byte is
// padded with zero). The hot loop loads 64-bit words — each carrying four
// 16-bit digits whose positional weight 2^16 ≡ 1 (mod 2^16−1), so the mixed
// accumulator folds to the same one's-complement sum — quartering the
// memory operations of a plain 16-bit loop. Each word is split into its two
// 32-bit halves before accumulating (branchless, no carry tracking); the
// halves are ≤ 2^32, so the uint64 accumulator cannot overflow for any
// buffer shorter than 2^32 bytes and folding is deferred to the very end.
func sumWords(b []byte) uint64 {
	var sum uint64
	for len(b) >= 32 {
		w0 := binary.BigEndian.Uint64(b)
		w1 := binary.BigEndian.Uint64(b[8:])
		w2 := binary.BigEndian.Uint64(b[16:])
		w3 := binary.BigEndian.Uint64(b[24:])
		sum += w0>>32 + w0&0xffffffff +
			w1>>32 + w1&0xffffffff +
			w2>>32 + w2&0xffffffff +
			w3>>32 + w3&0xffffffff
		b = b[32:]
	}
	for len(b) >= 8 {
		w := binary.BigEndian.Uint64(b)
		sum += w>>32 + w&0xffffffff
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	return sum
}

// fold16 reduces a deferred one's-complement sum to 16 bits.
func fold16(sum uint64) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// checksumZeroed computes Checksum of b treating the 2 bytes at off as zero:
// one unrolled pass sums the whole buffer, then the checksum word is
// subtracted from the running total. off must be even and word-aligned with
// off+2 <= len(b) (the header checksum field always is), so the word at off
// is one of the addends and the subtraction is exact — the accumulator holds
// the full unfolded sum.
func checksumZeroed(b []byte, off int) uint16 {
	sum := sumWords(b)
	sum -= uint64(binary.BigEndian.Uint16(b[off:]))
	return ^fold16(sum)
}
