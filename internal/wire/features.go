package wire

// Feature-bit registry for the TypeReq encoding.
//
// The REQ payload has two bit namespaces:
//
//   - flags (byte 14 of the fixed encoding): the original feature byte.
//     It is fully allocated — three flag bits plus the five-bit
//     rate-control policy field — so no new feature can land there
//     without colliding with a shipped decoder.
//   - xflags (first byte of the second trailing extension): the overflow
//     namespace new features allocate from. Old decoders ignore the
//     extension entirely, so an xflags bit degrades to "feature absent"
//     rather than to a misread field.
//
// Every allocated bit is declared here and listed in ReqFeatureBits; the
// registry test fails on overlapping masks and on any undeclared flags-byte
// bit, so two branches cannot silently grab the same bit.

// flags-byte allocations (byte 14 of the fixed REQ encoding).
const (
	reqFlagPush     = 1 << 0 // transfer direction: push (MoveTo)
	reqFlagAdaptive = 1 << 1 // rate control on (policy field selects which)
	reqFlagStat     = 1 << 2 // size query only, no transfer

	// Bits 3-7 carry the rate-control policy id as a field, not a flag.
	reqPolicyShift = 3
	reqPolicyMask  = 0x1F
)

// xflags-byte allocations (first byte of the second trailing extension).
const (
	reqXflagCopy = 1 << 0 // third-party copy: push Name to Target
)

// ReqFeatureBit records one allocation in a REQ bit namespace.
type ReqFeatureBit struct {
	Name string // feature name, for the registry test's diagnostics
	Byte string // namespace: "flags" or "xflags"
	Mask uint8  // the bits the feature occupies (fields span several)
}

// ReqFeatureBits is the authoritative allocation table for both REQ bit
// namespaces. Adding a feature bit means adding a constant above AND a row
// here; the registry test cross-checks the two and fails on overlap.
var ReqFeatureBits = []ReqFeatureBit{
	{Name: "push", Byte: "flags", Mask: reqFlagPush},
	{Name: "adaptive", Byte: "flags", Mask: reqFlagAdaptive},
	{Name: "stat", Byte: "flags", Mask: reqFlagStat},
	{Name: "policy", Byte: "flags", Mask: reqPolicyMask << reqPolicyShift},
	{Name: "copy", Byte: "xflags", Mask: reqXflagCopy},
}
