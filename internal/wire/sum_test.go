package wire

import (
	"math/rand"
	"testing"
)

// SumAcc over chunks delivered in any order, with any chunking (odd sizes,
// odd offsets), must equal Checksum over the whole stream.
func TestSumAccMatchesChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5000)
		data := make([]byte, n)
		rng.Read(data)
		want := Checksum(data)

		// Cut the stream into random chunks.
		type chunk struct {
			off int
			b   []byte
		}
		var chunks []chunk
		for off := 0; off < n; {
			l := 1 + rng.Intn(700)
			if off+l > n {
				l = n - off
			}
			chunks = append(chunks, chunk{off, data[off : off+l]})
			off += l
		}
		// Deliver in a random order.
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })

		var acc SumAcc
		for _, c := range chunks {
			acc.AddAt(c.off, c.b)
		}
		if got := acc.Sum16(); got != want {
			t.Fatalf("trial %d (n=%d, %d chunks): acc %04x, Checksum %04x",
				trial, n, len(chunks), got, want)
		}
	}
}

// Merging per-stripe accumulators (each folding a disjoint byte range at
// stream offsets) must equal the whole-stream checksum, for any stripe cut
// — including odd-offset boundaries.
func TestSumAccMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4000)
		data := make([]byte, n)
		rng.Read(data)
		want := Checksum(data)

		stripes := 1 + rng.Intn(5)
		accs := make([]SumAcc, stripes)
		// Cut into `stripes` contiguous ranges at random boundaries, then
		// feed each range to its own accumulator in chunks.
		bounds := []int{0}
		for i := 1; i < stripes; i++ {
			bounds = append(bounds, rng.Intn(n+1))
		}
		bounds = append(bounds, n)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				bounds[i] = bounds[i-1]
			}
		}
		for s := 0; s < stripes; s++ {
			for off := bounds[s]; off < bounds[s+1]; {
				l := 1 + rng.Intn(300)
				if off+l > bounds[s+1] {
					l = bounds[s+1] - off
				}
				accs[s].AddAt(off, data[off:off+l])
				off += l
			}
		}
		var total SumAcc
		for s := range accs {
			total.Merge(accs[s])
		}
		if got := total.Sum16(); got != want {
			t.Fatalf("trial %d (n=%d, %d stripes): merged %04x, Checksum %04x",
				trial, n, stripes, got, want)
		}
	}
}

func TestSumAccReset(t *testing.T) {
	var acc SumAcc
	acc.AddAt(0, []byte{1, 2, 3})
	acc.Reset()
	if got, want := acc.Sum16(), Checksum(nil); got != want {
		t.Errorf("after reset: %04x, want empty checksum %04x", got, want)
	}
}

// EncodeInto must produce byte-identical frames to Encode, report short
// slots, and perform no allocation.
func TestEncodeInto(t *testing.T) {
	pkt := &Packet{Type: TypeData, Flags: FlagLast, Attempt: 2, Trans: 9,
		Seq: 41, Total: 64, Payload: []byte("chunk bytes")}
	viaEncode, err := pkt.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	slot := make([]byte, 2048)
	n, err := pkt.EncodeInto(slot)
	if err != nil {
		t.Fatal(err)
	}
	if string(slot[:n]) != string(viaEncode) {
		t.Error("EncodeInto and Encode frames differ")
	}
	if _, err := pkt.EncodeInto(make([]byte, n-1)); err == nil {
		t.Error("short slot accepted")
	}
	big := &Packet{Type: TypeData, Payload: make([]byte, AbsMaxPayload+1)}
	if _, err := big.EncodeInto(make([]byte, 1<<17)); err == nil {
		t.Error("oversized payload accepted")
	}

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := pkt.EncodeInto(slot); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeInto allocates %.1f per op", allocs)
	}
}
