package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Selective-retransmission NAK payload (§3.2.3, strategy 4): a base sequence
// number followed by a bitmap in which bit i set means packet base+i was NOT
// received. The encoding is
//
//	base  uint32
//	count uint32            number of bitmap bits
//	bits  ceil(count/8) bytes, MSB-first within each byte
//
// A NAK for the paper's 64-packet transfers costs 8 + 8 = 16 payload bytes,
// comfortably inside a 64-byte ack-sized packet.

// ErrNakEncoding reports a malformed selective-NAK payload.
var ErrNakEncoding = errors.New("wire: malformed selective-nak payload")

// nakHeaderLen is the fixed portion of the selective-NAK payload.
const nakHeaderLen = 8

// MaxMissingBits is the largest bitmap that fits in MaxPayload.
const MaxMissingBits = (MaxPayload - nakHeaderLen) * 8

// EncodeMissing builds the selective-NAK payload for the given missing
// sequence numbers. The slice may be in any order; it must be non-empty and
// its span (max-min+1) must not exceed MaxMissingBits.
func EncodeMissing(missing []uint32) ([]byte, error) {
	if len(missing) == 0 {
		return nil, fmt.Errorf("%w: no missing packets", ErrNakEncoding)
	}
	sorted := make([]uint32, len(missing))
	copy(sorted, missing)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	base := sorted[0]
	span := sorted[len(sorted)-1] - base + 1
	if span > MaxMissingBits {
		return nil, fmt.Errorf("%w: span %d exceeds %d bits", ErrNakEncoding, span, MaxMissingBits)
	}
	buf := make([]byte, nakHeaderLen+(int(span)+7)/8)
	binary.BigEndian.PutUint32(buf[0:4], base)
	binary.BigEndian.PutUint32(buf[4:8], span)
	for _, s := range sorted {
		bit := s - base
		buf[nakHeaderLen+bit/8] |= 0x80 >> (bit % 8)
	}
	return buf, nil
}

// DecodeMissing parses a selective-NAK payload and returns the missing
// sequence numbers in ascending order.
func DecodeMissing(payload []byte) ([]uint32, error) {
	if len(payload) < nakHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrNakEncoding, len(payload))
	}
	base := binary.BigEndian.Uint32(payload[0:4])
	count := binary.BigEndian.Uint32(payload[4:8])
	if count == 0 || count > MaxMissingBits {
		return nil, fmt.Errorf("%w: bit count %d", ErrNakEncoding, count)
	}
	need := nakHeaderLen + (int(count)+7)/8
	if len(payload) < need {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrNakEncoding, need, len(payload))
	}
	var missing []uint32
	for i := uint32(0); i < count; i++ {
		if payload[nakHeaderLen+i/8]&(0x80>>(i%8)) != 0 {
			missing = append(missing, base+i)
		}
	}
	if len(missing) == 0 {
		return nil, fmt.Errorf("%w: empty bitmap", ErrNakEncoding)
	}
	return missing, nil
}

// Transfer-request payload (TypeReq): the parameters both sides of a
// transfer must agree on. It plays the role of the V kernel's IPC message
// that precedes a MoveTo/MoveFrom — the exchange through which "the
// recipient has sufficient buffers allocated to receive the data prior to
// the transfer" (§2).
//
//	bytes     uint64  transfer length in bytes
//	chunk     uint32  data-packet payload size
//	strategy  uint8   retransmission strategy identifier (core.Strategy)
//	protocol  uint8   protocol class identifier (core.Protocol)
//	flags     uint8   bit 0: push (MoveTo), bit 1: rate control on,
//	                  bit 2: stat, bits 3-7: rate-control policy id
//	window    uint32  multiblast window in packets (0 = single blast)
//	trMicros  uint64  retransmission timeout Tr in microseconds
//	offChunks uint32  stripe offset within the logical stream, in chunks
//	total     uint64  logical stream length in bytes (0 = standalone)
//
// The stripe fields let one logical transfer be split across parallel
// sessions: each stripe's REQ names its byte range (offset is always
// chunk-aligned, hence carried in chunks to keep the whole REQ inside a
// 64-byte ack-sized packet) and the length of the stream it belongs to, so
// a serving side can regenerate or address exactly the requested range.

// reqLen is the encoded TypeReq payload length without the optional name
// extension.
const reqLen = 39

// MaxReqName bounds the optional object-name extension: its length is
// carried in one byte.
const MaxReqName = 255

// MaxReqTarget bounds the optional copy-target address: it shares the
// second extension with the xflags byte, whose combined length is carried
// in one byte.
const MaxReqTarget = 254

// MaxReqPolicy is the largest rate-control policy id the flags byte can
// carry.
const MaxReqPolicy = reqPolicyMask

// Req describes a requested transfer.
type Req struct {
	Bytes    uint64
	Chunk    uint32
	Strategy uint8
	Protocol uint8
	Push     bool
	Window   uint32
	TrMicros uint64

	// Adaptive carries the rate-control policy byte: zero asks for the
	// fixed schedule of the REQ parameters, a non-zero id asks the data's
	// sender to drive the transfer with that registered rate controller
	// (the REQ parameters then only seed it; ids map to names through the
	// core registry, 1 = the classic AIMD controller). Encoders from before
	// the policy byte set only the adaptive flag bit, which decodes as
	// policy 1 — the old meaning exactly.
	Adaptive uint8

	// OffsetChunks is this stripe's byte offset within the logical stream,
	// in units of Chunk (stripe boundaries are chunk-aligned). Zero for an
	// unstriped transfer.
	OffsetChunks uint32

	// Total is the logical stream's full length in bytes when this request
	// is one stripe of a larger transfer; zero means the request stands
	// alone (the stream is exactly Bytes long).
	Total uint64

	// Name identifies the remote object the request addresses — a file
	// served by name from a store. Empty for anonymous (seeded or pushed)
	// transfers. Encoded as a trailing extension (one length byte plus the
	// bytes) so nameless requests keep the original 39-byte, ack-sized
	// encoding and old decoders simply ignore the extension.
	Name string

	// Stat asks the serving side only for the named object's size (the
	// reply is an ack-sized FIN carrying the 8-byte length); no transfer
	// starts. Clients stat first so a pull — striped or not — can size its
	// REQ exactly.
	Stat bool

	// Copy asks the serving side to push the object named by Name to the
	// server at Target (third-party copy): the requester is only the
	// orchestrator, the data moves server-to-server. Rides the second
	// trailing extension's xflags byte — the original flags byte is fully
	// allocated (see features.go).
	Copy bool

	// Target is the destination server address of a third-party copy, in
	// the serving substrate's notation (host:port for UDP). Carried in the
	// second trailing extension; at most MaxReqTarget bytes.
	Target string
}

// Offset returns the stripe's byte offset within its logical stream.
func (r Req) Offset() uint64 { return uint64(r.OffsetChunks) * uint64(r.Chunk) }

// StreamBytes returns the logical stream's length: Total when striped,
// Bytes otherwise.
func (r Req) StreamBytes() uint64 {
	if r.Total > 0 {
		return r.Total
	}
	return r.Bytes
}

// ErrReqEncoding reports a malformed request payload.
var ErrReqEncoding = errors.New("wire: malformed request payload")

// EncodeReq serialises the request parameters. Names longer than
// MaxReqName (or targets longer than MaxReqTarget) cannot be carried in
// the one-byte length extensions; callers validate (see ValidReqName)
// before encoding, so an oversized field here is a programming error and
// panics.
func EncodeReq(r Req) []byte {
	if len(r.Name) > MaxReqName {
		panic(fmt.Sprintf("wire: request name %d bytes exceeds MaxReqName %d", len(r.Name), MaxReqName))
	}
	if len(r.Target) > MaxReqTarget {
		panic(fmt.Sprintf("wire: request target %d bytes exceeds MaxReqTarget %d", len(r.Target), MaxReqTarget))
	}
	// The second extension rides behind the name extension, so a request
	// that needs it emits the name extension too — with a zero length byte
	// when there is no name.
	ext2 := r.Copy || r.Target != ""
	n := reqLen
	if r.Name != "" || ext2 {
		n += 1 + len(r.Name)
	}
	if ext2 {
		n += 2 + len(r.Target)
	}
	buf := make([]byte, n)
	binary.BigEndian.PutUint64(buf[0:8], r.Bytes)
	binary.BigEndian.PutUint32(buf[8:12], r.Chunk)
	buf[12] = r.Strategy
	buf[13] = r.Protocol
	if r.Push {
		buf[14] |= reqFlagPush
	}
	if r.Adaptive != 0 {
		// The flag bit stays set alongside the policy id so pre-policy
		// decoders still see "rate control on".
		buf[14] |= reqFlagAdaptive
		buf[14] |= (r.Adaptive & reqPolicyMask) << reqPolicyShift
	}
	if r.Stat {
		buf[14] |= reqFlagStat
	}
	binary.BigEndian.PutUint32(buf[15:19], r.Window)
	binary.BigEndian.PutUint64(buf[19:27], r.TrMicros)
	binary.BigEndian.PutUint32(buf[27:31], r.OffsetChunks)
	binary.BigEndian.PutUint64(buf[31:39], r.Total)
	if r.Name != "" || ext2 {
		buf[reqLen] = byte(len(r.Name))
		copy(buf[reqLen+1:], r.Name)
	}
	if ext2 {
		// [length][xflags][target...]: the length byte counts the xflags
		// byte plus the target, so the extension can grow more fields the
		// same way the fixed part did.
		off := reqLen + 1 + len(r.Name)
		buf[off] = byte(1 + len(r.Target))
		if r.Copy {
			buf[off+1] |= reqXflagCopy
		}
		copy(buf[off+2:], r.Target)
	}
	return buf
}

// ValidReqName reports whether a name fits the request encoding: non-empty,
// at most MaxReqName bytes, no NUL.
func ValidReqName(name string) bool {
	if name == "" || len(name) > MaxReqName {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == 0 {
			return false
		}
	}
	return true
}

// DecodeReq parses request parameters. A payload longer than the fixed
// encoding carries the name extension, optionally followed by the second
// (xflags + copy-target) extension; bytes beyond a complete extension are
// ignored (room for future additions, mirroring how the fixed part itself
// grew in place).
func DecodeReq(payload []byte) (Req, error) {
	if len(payload) < reqLen {
		return Req{}, fmt.Errorf("%w: %d bytes", ErrReqEncoding, len(payload))
	}
	r := Req{
		Bytes:        binary.BigEndian.Uint64(payload[0:8]),
		Chunk:        binary.BigEndian.Uint32(payload[8:12]),
		Strategy:     payload[12],
		Protocol:     payload[13],
		Push:         payload[14]&reqFlagPush != 0,
		Stat:         payload[14]&reqFlagStat != 0,
		Window:       binary.BigEndian.Uint32(payload[15:19]),
		TrMicros:     binary.BigEndian.Uint64(payload[19:27]),
		OffsetChunks: binary.BigEndian.Uint32(payload[27:31]),
		Total:        binary.BigEndian.Uint64(payload[31:39]),
	}
	if payload[14]&reqFlagAdaptive != 0 {
		r.Adaptive = (payload[14] >> reqPolicyShift) & reqPolicyMask
		if r.Adaptive == 0 {
			// A pre-policy encoder: the lone flag bit meant AIMD.
			r.Adaptive = 1
		}
	}
	if len(payload) > reqLen {
		n := int(payload[reqLen])
		if len(payload) < reqLen+1+n {
			return Req{}, fmt.Errorf("%w: name extension truncated (%d of %d bytes)",
				ErrReqEncoding, len(payload)-reqLen-1, n)
		}
		r.Name = string(payload[reqLen+1 : reqLen+1+n])
		off := reqLen + 1 + n
		if len(payload) > off {
			n2 := int(payload[off])
			if n2 > 0 {
				if len(payload) < off+1+n2 {
					return Req{}, fmt.Errorf("%w: xflags extension truncated (%d of %d bytes)",
						ErrReqEncoding, len(payload)-off-1, n2)
				}
				r.Copy = payload[off+1]&reqXflagCopy != 0
				r.Target = string(payload[off+2 : off+1+n2])
			}
		}
	}
	return r, nil
}
