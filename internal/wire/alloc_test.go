package wire

import "testing"

// TestCodecRoundTripAllocFree pins the codec hot path at zero allocations:
// Encode into a capacity-sufficient reused buffer and DecodeInto a reused
// Packet must not touch the heap.
func TestCodecRoundTripAllocFree(t *testing.T) {
	pkt := &Packet{Type: TypeData, Trans: 7, Seq: 41, Total: 64,
		Payload: make([]byte, 1000)}
	buf := make([]byte, 0, 1100)
	var dec Packet
	allocs := testing.AllocsPerRun(200, func() {
		out, err := pkt.Encode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(&dec, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("codec round trip allocates %.1f times per op, want 0", allocs)
	}
	if dec.Seq != pkt.Seq || dec.Total != pkt.Total || len(dec.Payload) != len(pkt.Payload) {
		t.Fatalf("round trip corrupted packet: %+v", dec)
	}
}

// TestChecksumZeroedMatchesNaive cross-checks the single-pass
// subtract-the-word rewrite against a naive masked recomputation.
func TestChecksumZeroedMatchesNaive(t *testing.T) {
	naive := func(b []byte, off int) uint16 {
		masked := make([]byte, len(b))
		copy(masked, b)
		masked[off], masked[off+1] = 0, 0
		return Checksum(masked)
	}
	for _, n := range []int{24, 25, 100, 1024, 1499} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i*131 + 17)
		}
		for _, off := range []int{0, 2, 20, 22} {
			if got, want := checksumZeroed(b, off), naive(b, off); got != want {
				t.Fatalf("len=%d off=%d: got %04x want %04x", n, off, got, want)
			}
		}
	}
}
