// Package transport defines the narrow substrate interface the shared
// session layer (internal/session) is written against. The paper defines
// its protocols independently of the medium; this package does the same for
// the machinery *around* the protocols — serving many clients at once,
// fanning a striped pull across concurrent sessions — so that one server
// and one stripe orchestrator run unchanged on every substrate:
//
//   - internal/udplan implements it over real UDP sockets (goroutines,
//     wall-clock deadlines, sendmmsg/recvmmsg batching);
//   - internal/sim implements it in virtual time (simulator processes,
//     deterministic handoff scheduling), which is what makes many-client
//     scale behaviour — session capacity, shard contention, fairness —
//     reproducible bit for bit.
//
// The protocol engines themselves still run against core.Env; this package
// adds only what a daemon needs beyond a single two-party conversation:
// demultiplexed arrivals (Listener), per-session delivery and concurrency
// (Conn), and client-side fan-out (Fabric, Client).
package transport

import (
	"time"

	"blastlan/internal/core"
	"blastlan/internal/wire"
)

// Peer identifies a remote party for logs and transfer stats. net.Addr
// satisfies it on socket substrates; a simulated station satisfies it with
// its name.
type Peer interface{ String() string }

// Message is one substrate-owned arrival in flight from the demux loop to a
// session conn. Substrates define their own concrete type — a transient
// datagram view for UDP, a decoded packet for the simulator — and the
// session layer treats it as opaque freight: it either routes the message
// with Conn.Deliver or drops it on the floor.
type Message = any

// Inbound is one demultiplexed arrival: the canonical identity of its
// source plus the substrate freight. Key aliases listener-owned storage and
// is valid only until the next Accept; callers that retain it must copy.
type Inbound struct {
	Key []byte
	Msg Message
}

// Listener is a substrate's server-side receive surface. Exactly one demux
// loop (session.Server.Run) drives it, strictly serially: Accept, then
// optionally ReqOf/Open for the arrival just accepted, then Deliver on some
// conn. Implementations may therefore reuse buffers across calls and
// remember the most recent arrival's source for Open.
type Listener interface {
	// Accept waits up to idle (<= 0: forever) for the next arrival from any
	// source. On an expired idle bound the error satisfies core.IsTimeout;
	// a closed listener reports net.ErrClosed.
	Accept(idle time.Duration) (Inbound, error)

	// ReqOf decodes msg as a session-opening request. Only a checksum-valid
	// REQ packet may open a session (the demux mirror of LearnReqOnly):
	// stragglers from finished transfers cannot claim server state.
	ReqOf(msg Message) (wire.Req, bool)

	// Open creates the session conn for the source of the most recent
	// Accept. It fails only when the substrate cannot resolve that source
	// into a deliverable peer.
	Open() (Conn, Peer, error)

	// Drain blocks until every session body spawned by every Conn has
	// returned. The demux loop calls it once, after it stops accepting.
	Drain()
}

// BusyReplier is an optional Listener extension: ReplyBusy sends a
// best-effort BUSY/RETRY-AFTER refusal to the source of the most recent
// Accept, telling a client whose valid REQ was refused (session cap
// reached, server draining) to back off retryAfter before asking again
// instead of burning its REQ retransmission budget. msg is the refused
// arrival (the substrate recovers the transfer id from it). Like any
// datagram the reply may be lost; the client's next REQ re-elicits it.
type BusyReplier interface {
	ReplyBusy(msg Message, retryAfter time.Duration) error
}

// Redialer is an optional Fabric extension: Redial opens a fresh client
// conn to the same server for body i, replacing one whose session died —
// the striped repair path re-dials a stripe before resuming it on
// substrates whose conns do not outlive their session.
type Redialer interface {
	Redial(i int) (Client, error)
}

// Conn is one admitted session's server-side channel. The demux loop feeds
// it with Deliver; the session body consumes through the core.Env that
// Spawn provides.
type Conn interface {
	// Deliver hands an arrival to the session's inbox. It must not block:
	// an overflowing inbox drops the message, an interface drop the
	// protocol recovers from.
	Deliver(msg Message)

	// Spawn runs the session body in the substrate's own thread of control
	// — a goroutine on sockets, a simulator process in virtual time — and
	// hands it the conn's protocol environment. The substrate performs its
	// own teardown (flushing batched frames, recycling buffers) after the
	// body returns.
	Spawn(name string, body func(env core.Env))

	// Hangup closes the inbox from the demux side: the session's next Recv
	// fails with net.ErrClosed and the body unwinds. Used at server
	// shutdown, when the demux loop has already stopped.
	Hangup()
}

// Client is a dialed client-side conn: the environment a protocol engine
// runs on, plus teardown. Close releases the conn from its own thread of
// control; Abort unblocks a running engine promptly from a sibling's thread
// (the engine's pending or next Send/Recv fails), which is how a striped
// pull cancels its remaining stripes when one fails.
type Client interface {
	core.Env
	Close() error
	Abort()
}

// Fabric fans concurrent client sessions onto a substrate: Fan runs
// body(i, client_i) for every i in [0, n) concurrently, dialing one fresh
// client conn per body, and returns when every body has returned; errs[i]
// is what body(i, ·) returned. A fabric that fails to dial client i still
// invokes the body — with FailedClient(err) — so failures flow through the
// same path as any other session error and orchestrators can react (cancel
// siblings) promptly. Fabrics close each client after its body returns, so
// bodies only Close early when they want to.
type Fabric interface {
	Fan(n int, body func(i int, c Client) error) []error
}

// FailedClient returns a Client whose every protocol operation fails with
// err: the stand-in a Fabric hands the body when dialing (or preparing)
// client i failed, so the failure surfaces through the body's normal error
// path instead of bypassing it.
func FailedClient(err error) Client { return failedClient{err} }

type failedClient struct{ err error }

func (c failedClient) Now() time.Duration                       { return 0 }
func (c failedClient) Compute(time.Duration)                    {}
func (c failedClient) Send(*wire.Packet) error                  { return c.err }
func (c failedClient) SendAsync(*wire.Packet) error             { return c.err }
func (c failedClient) Recv(time.Duration) (*wire.Packet, error) { return nil, c.err }
func (c failedClient) Close() error                             { return nil }
func (c failedClient) Abort()                                   {}
