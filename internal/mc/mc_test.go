package mc

import (
	"testing"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/stats"
)

func baseParams(strategy core.Strategy, pn float64) Params {
	m := params.VKernel()
	return Params{
		Cost:     m,
		D:        64,
		PN:       pn,
		Tr:       analytic.TimeBlast(m, 64), // Tr = T0(D), Figure 5/6 setting
		Strategy: strategy,
		Trials:   30000,
		Seed:     1,
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{Cost: params.VKernel(), D: 0},
		{Cost: params.VKernel(), D: 4, PN: -0.5},
		{Cost: params.VKernel(), D: 4, PN: 1.5},
		{Cost: params.VKernel(), D: 4, Tr: -1},
		{Cost: params.CostModel{}, D: 4},
	}
	for i, p := range bad {
		if _, err := Blast(p); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestErrorFreeBlastIsDeterministic(t *testing.T) {
	p := baseParams(core.GoBackN, 0)
	p.Trials = 100
	est, err := Blast(p)
	if err != nil {
		t.Fatal(err)
	}
	// pn=0: exactly D·(C+T) + response latency, zero variance.
	want := time.Duration(p.D)*(p.Cost.C()+p.Cost.T()) + analytic.ResponseLatency(p.Cost)
	if est.Mean != want {
		t.Errorf("mean = %v, want %v", est.Mean, want)
	}
	if est.StdDev != 0 || est.Min != want || est.Max != want {
		t.Errorf("degenerate distribution expected: %+v", est)
	}
	if est.Failures != 0 {
		t.Errorf("failures = %d", est.Failures)
	}
}

func TestErrorFreeSAW(t *testing.T) {
	p := baseParams(core.FullNoNak, 0)
	p.Trials = 100
	est, err := StopAndWait(p)
	if err != nil {
		t.Fatal(err)
	}
	// pn=0: D·(C+T + response latency) = T_SAW + 2Dτ.
	want := analytic.TimeStopAndWait(p.Cost, p.D) +
		time.Duration(2*p.D)*p.Cost.Propagation
	if est.Mean != want {
		t.Errorf("mean = %v, want %v", est.Mean, want)
	}
}

// The MC's R1 estimates must agree with §3.1.2/§3.2.1 closed forms in the
// low-loss regime where the paper's independent-attempt approximation holds.
func TestR1MatchesAnalytic(t *testing.T) {
	for _, pn := range []float64{1e-4, 1e-3} {
		p := baseParams(core.FullNoNak, pn)
		p.Trials = 200000
		est, err := Blast(p)
		if err != nil {
			t.Fatal(err)
		}
		t0d := analytic.TimeBlast(p.Cost, p.D) + 2*p.Cost.Propagation
		wantMean := analytic.ExpectedTimeBlast(t0d, p.Tr, p.D, pn)
		if re := stats.RelErr(float64(est.Mean), float64(wantMean)); re > 0.02 {
			t.Errorf("pn=%g: mean %v vs analytic %v (rel err %.3f)", pn, est.Mean, wantMean, re)
		}
		wantStd := analytic.StdDevFullNoNak(t0d, p.Tr, p.D, pn)
		if re := stats.RelErr(float64(est.StdDev), float64(wantStd)); re > 0.10 {
			t.Errorf("pn=%g: σ %v vs analytic %v (rel err %.3f)", pn, est.StdDev, wantStd, re)
		}
	}
}

// The MC's R2 estimates must agree with the exact mixture model.
func TestR2MatchesAnalytic(t *testing.T) {
	pn := 1e-3
	p := baseParams(core.FullNak, pn)
	p.Trials = 200000
	est, err := Blast(p)
	if err != nil {
		t.Fatal(err)
	}
	t0d := analytic.TimeBlast(p.Cost, p.D) + 2*p.Cost.Propagation
	tresp := analytic.ResponseLatency(p.Cost)
	wantMean := analytic.ExpectedTimeFullNak(t0d, p.Tr, tresp, p.D, pn)
	if re := stats.RelErr(float64(est.Mean), float64(wantMean)); re > 0.02 {
		t.Errorf("mean %v vs analytic %v (rel err %.3f)", est.Mean, wantMean, re)
	}
	wantStd := analytic.StdDevFullNak(t0d, p.Tr, tresp, p.D, pn)
	if re := stats.RelErr(float64(est.StdDev), float64(wantStd)); re > 0.10 {
		t.Errorf("σ %v vs analytic %v (rel err %.3f)", est.StdDev, wantStd, re)
	}
}

// Figure 6's qualitative content: σ(R1) > σ(R2) > σ(R3) ≥ σ(R4), with R3
// only marginally above R4 — the paper's justification for choosing
// go-back-n.
func TestStrategyOrdering(t *testing.T) {
	pn := 1e-2
	sigmas := map[core.Strategy]time.Duration{}
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		p := baseParams(s, pn)
		p.Trials = 60000
		est, err := Blast(p)
		if err != nil {
			t.Fatal(err)
		}
		if est.Failures != 0 {
			t.Fatalf("%v: %d failures", s, est.Failures)
		}
		sigmas[s] = est.StdDev
	}
	if !(sigmas[core.FullNoNak] > sigmas[core.FullNak]) {
		t.Errorf("σ R1 %v should exceed R2 %v", sigmas[core.FullNoNak], sigmas[core.FullNak])
	}
	if !(sigmas[core.FullNak] > sigmas[core.GoBackN]) {
		t.Errorf("σ R2 %v should exceed R3 %v", sigmas[core.FullNak], sigmas[core.GoBackN])
	}
	// R3 vs R4: selective no worse, but within a modest factor ("the
	// improvement in performance is not very significant").
	r3, r4 := float64(sigmas[core.GoBackN]), float64(sigmas[core.Selective])
	if r4 > r3*1.10 {
		t.Errorf("σ R4 %v materially worse than R3 %v", sigmas[core.Selective], sigmas[core.GoBackN])
	}
	if r4 < r3*0.4 {
		t.Errorf("σ R4 %v suspiciously far below R3 %v (paper: marginal difference)",
			sigmas[core.Selective], sigmas[core.GoBackN])
	}
}

// Mean elapsed time barely differs across strategies in the flat region —
// §3.1.3's "no significant improvements in expected time can be achieved by
// more sophisticated retransmission strategies".
func TestMeansNearlyEqualAcrossStrategies(t *testing.T) {
	pn := 1e-4
	m := params.VKernel()
	errorFree := float64(analytic.TimeBlast(m, 64))
	for _, s := range []core.Strategy{core.FullNoNak, core.FullNak, core.GoBackN, core.Selective} {
		p := baseParams(s, pn)
		p.Trials = 50000
		est, err := Blast(p)
		if err != nil {
			t.Fatal(err)
		}
		// Even the crudest strategy stays within ~1.3 % of error-free here,
		// so nothing smarter can buy a significant mean improvement.
		if re := stats.RelErr(float64(est.Mean), errorFree); re > 0.02 {
			t.Errorf("%v: mean %v vs error-free %v (rel err %.3f)", s, est.Mean, analytic.TimeBlast(m, 64), re)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := baseParams(core.GoBackN, 5e-2)
	p.Trials = 5000
	a, err := Blast(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blast(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("estimates differ:\n%+v\n%+v", a, b)
	}
}

func TestHopelessLinkFails(t *testing.T) {
	p := baseParams(core.GoBackN, 1)
	p.Trials = 5
	p.MaxRounds = 50
	est, err := Blast(p)
	if err != nil {
		t.Fatal(err)
	}
	if est.Failures != p.Trials {
		t.Errorf("failures = %d, want %d", est.Failures, p.Trials)
	}
}

func TestCombinedLoss(t *testing.T) {
	if got := CombinedLoss(params.LossModel{PNet: 0.1, PIface: 0.1}); stats.RelErr(got, 0.19) > 1e-12 {
		t.Errorf("CombinedLoss = %g, want 0.19", got)
	}
	if got := CombinedLoss(params.NoLoss()); got != 0 {
		t.Errorf("CombinedLoss(0) = %g", got)
	}
}
