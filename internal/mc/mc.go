// Package mc implements the paper's strategy-level Monte-Carlo simulation
// (§3.2.3: "We have simulated the procedures by computer and determined both
// the expected time and the variance from the simulation").
//
// Unlike the cycle-accurate discrete-event simulator in internal/sim, a
// trial here samples only per-packet loss outcomes and composes elapsed time
// from the §2.1.3 closed-form segment costs. That makes 10⁵–10⁶ trials per
// parameter point cheap, which Figure 6's small-σ points need. The model
// tracks the receiver's accumulated bitmap across attempts (packets received
// in a failed attempt stay received — the paper's pre-allocated buffers make
// this the physically correct model), so it agrees with the full DES rather
// than with the paper's slightly pessimistic independent-attempt
// approximation; the two coincide as p_n → 0.
package mc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blastlan/internal/core"
	"blastlan/internal/params"
	"blastlan/internal/stats"
)

// Params configures one Monte-Carlo estimate.
type Params struct {
	// Cost provides the C, Ca, T, Ta, τ segment costs.
	Cost params.CostModel
	// D is the number of data packets in the transfer.
	D int
	// PN is the per-packet loss probability (applied independently to every
	// data packet and every response, per §3's model). Combine wire and
	// interface losses with CombinedLoss.
	PN float64
	// Tr is the retransmission timeout.
	Tr time.Duration
	// Strategy selects the §3.2 retransmission strategy (blast trials).
	Strategy core.Strategy
	// Trials is the number of independent transfers to sample
	// (default 100000).
	Trials int
	// Seed makes the estimate reproducible; trial i uses Seed+i.
	Seed int64
	// MaxRounds bounds a single trial (default 1e6 rounds); exceeding it
	// counts as a failure instead of looping forever at p_n → 1.
	MaxRounds int
}

// Estimate is the sampled distribution summary of the transfer time.
type Estimate struct {
	Mean     time.Duration
	StdDev   time.Duration
	Min, Max time.Duration
	Trials   int
	Failures int // trials abandoned at MaxRounds
}

// CombinedLoss folds independent wire and interface loss probabilities into
// the single per-packet loss probability the §3 analysis uses.
func CombinedLoss(l params.LossModel) float64 {
	return 1 - (1-l.PNet)*(1-l.PIface)
}

func (p Params) withDefaults() (Params, error) {
	if p.Trials == 0 {
		p.Trials = 100000
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 1_000_000
	}
	switch {
	case p.D <= 0:
		return p, fmt.Errorf("mc: D must be positive, got %d", p.D)
	case p.PN < 0 || p.PN > 1:
		return p, fmt.Errorf("mc: PN must be in [0,1], got %g", p.PN)
	case p.Tr < 0:
		return p, fmt.Errorf("mc: Tr must be non-negative")
	case p.Trials < 1:
		return p, fmt.Errorf("mc: Trials must be positive")
	}
	if err := p.Cost.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// segments holds the closed-form time components a trial composes.
type segments struct {
	cycle time.Duration // C+T: one data packet through a single-buffered sender
	resp  time.Duration // last-packet copy-out + response turnaround (analytic.ResponseLatency)
	tr    time.Duration
}

func newSegments(p Params) segments {
	m := p.Cost
	return segments{
		cycle: m.C() + m.T(),
		resp:  m.C() + 2*m.Ca() + m.Ta() + 2*m.Propagation,
		tr:    p.Tr,
	}
}

// Blast estimates the elapsed-time distribution of a D-packet blast under
// the configured retransmission strategy.
func Blast(p Params) (Estimate, error) {
	p, err := p.withDefaults()
	if err != nil {
		return Estimate{}, err
	}
	seg := newSegments(p)
	return parallelTrials(p, func() trialFunc {
		// One scratch per worker: the trial loop reuses its received-set and
		// round-sequence buffers instead of reallocating them per trial.
		sc := &blastScratch{got: make([]bool, p.D)}
		return func(rng *rand.Rand) (time.Duration, bool) {
			return blastTrial(p, seg, rng, sc)
		}
	})
}

// StopAndWait estimates the elapsed-time distribution of a D-packet
// stop-and-wait transfer (§3.1.1's model, with receiver-state tracking).
func StopAndWait(p Params) (Estimate, error) {
	p, err := p.withDefaults()
	if err != nil {
		return Estimate{}, err
	}
	seg := newSegments(p)
	return parallelTrials(p, func() trialFunc {
		return func(rng *rand.Rand) (time.Duration, bool) {
			return sawTrial(p, seg, rng)
		}
	})
}

// sawTrial samples one stop-and-wait transfer: per packet, retry until the
// data packet and its acknowledgement both arrive.
func sawTrial(p Params, seg segments, rng *rand.Rand) (time.Duration, bool) {
	var t time.Duration
	rounds := 0
	for pkt := 0; pkt < p.D; pkt++ {
		for {
			rounds++
			if rounds > p.MaxRounds {
				return t, false
			}
			t += seg.cycle
			dataOK := rng.Float64() >= p.PN
			if dataOK {
				// Receiver acks (it may already have the packet; a dup
				// re-elicits the ack with identical timing).
				if rng.Float64() >= p.PN {
					t += seg.resp
					break
				}
			}
			t += seg.tr
		}
	}
	return t, true
}

// blastScratch holds the per-worker buffers one blast trial needs; reusing
// it across the worker's trials keeps the 10⁵–10⁶-trial loops allocation-free.
type blastScratch struct {
	got  []bool
	seqs []int // suffix round sequences ([resendFrom, d))
	sel  []int // selective round sequences, rebuilt per NAK
}

// blastTrial samples one blast transfer under p.Strategy.
func blastTrial(p Params, seg segments, rng *rand.Rand, sc *blastScratch) (time.Duration, bool) {
	var t time.Duration
	d := p.D
	if cap(sc.got) < d {
		sc.got = make([]bool, d)
	}
	got := sc.got[:d]
	clear(got)
	count := 0
	firstMissing := 0
	rounds := 0

	// The set to (re)transmit this round is either the suffix [resendFrom, d)
	// or, once a Selective NAK arrived, the explicit missing list in sc.sel.
	resendFrom := 0
	useSel := false

	for {
		rounds++
		if rounds > p.MaxRounds {
			return t, false
		}

		// Transmit this round's pending set; every packet but the round's
		// final one is unreliable.
		var roundSeqs []int
		if useSel {
			roundSeqs = sc.sel
		} else {
			sc.seqs = sc.seqs[:0]
			for s := resendFrom; s < d; s++ {
				sc.seqs = append(sc.seqs, s)
			}
			roundSeqs = sc.seqs
		}
		for _, s := range roundSeqs[:len(roundSeqs)-1] {
			t += seg.cycle
			if rng.Float64() >= p.PN && !got[s] {
				got[s] = true
				count++
			}
		}
		last := roundSeqs[len(roundSeqs)-1]

		// The round's final packet is sent reliably: retransmit on silence.
		for {
			rounds++
			if rounds > p.MaxRounds {
				return t, false
			}
			t += seg.cycle // send the last packet
			lastArrived := rng.Float64() >= p.PN
			if lastArrived && !got[last] {
				got[last] = true
				count++
			}
			if !lastArrived {
				// Silence at the receiver: the sender waits out Tr.
				t += seg.tr
				if p.Strategy == core.FullNoNak || p.Strategy == core.FullNak {
					break // retransmit the whole sequence
				}
				continue // retransmit just the last packet
			}
			// The receiver responds (positively or negatively, §3.2).
			for firstMissing < d && got[firstMissing] {
				firstMissing++
			}
			complete := count == d
			if p.Strategy == core.FullNoNak && !complete {
				// §3.2.1: no NAK exists; the sender hears nothing.
				t += seg.tr
				break
			}
			if rng.Float64() < p.PN {
				// Response lost: timeout.
				t += seg.tr
				if p.Strategy == core.FullNoNak || p.Strategy == core.FullNak {
					break
				}
				continue
			}
			t += seg.resp
			if complete {
				return t, true
			}
			// NAK in hand: shape the next round.
			switch p.Strategy {
			case core.FullNak:
				resendFrom, useSel = 0, false
			case core.GoBackN:
				resendFrom, useSel = firstMissing, false
			case core.Selective:
				sc.sel = sc.sel[:0]
				for s := firstMissing; s < d; s++ {
					if !got[s] {
						sc.sel = append(sc.sel, s)
					}
				}
				useSel = true
			}
			break
		}
	}
}

// trialFunc samples one transfer.
type trialFunc func(*rand.Rand) (time.Duration, bool)

// parallelTrials fans trials across workers with per-trial seeding, so the
// estimate is deterministic regardless of scheduling. newTrial builds one
// trial closure per worker, giving each worker private scratch buffers.
// Each worker owns a single RNG re-seeded per trial — trial i always draws
// from Seed+i, with the rand.New source allocation hoisted out of the loop.
func parallelTrials(p Params, newTrial func() trialFunc) (Estimate, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > p.Trials {
		workers = p.Trials
	}
	if workers < 1 {
		workers = 1
	}
	type part struct {
		w        stats.Welford
		failures int
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trial := newTrial()
			rng := rand.New(rand.NewSource(0))
			for i := w; i < p.Trials; i += workers {
				rng.Seed(p.Seed + int64(i))
				elapsed, ok := trial(rng)
				if !ok {
					parts[w].failures++
					continue
				}
				parts[w].w.Add(float64(elapsed))
			}
		}(w)
	}
	wg.Wait()
	var all stats.Welford
	failures := 0
	for i := range parts {
		all.Merge(&parts[i].w)
		failures += parts[i].failures
	}
	return Estimate{
		Mean:     time.Duration(all.Mean()),
		StdDev:   time.Duration(all.StdDev()),
		Min:      time.Duration(all.Min()),
		Max:      time.Duration(all.Max()),
		Trials:   p.Trials,
		Failures: failures,
	}, nil
}
