// Package blastlan is a reproduction of Willy Zwaenepoel's "Protocols for
// Large Data Transfers over Local Networks" (SIGCOMM 1985): the blast,
// sliding-window and stop-and-wait protocol classes, the four blast
// retransmission strategies, the closed-form cost models, and the
// measurement substrates — a cycle-accurate discrete-event simulator of the
// paper's SUN/3-Com/Ethernet hardware, a miniature V kernel with
// MoveTo/MoveFrom, and a real UDP transport running the identical protocol
// code.
//
// This file is the public facade: it re-exports the pieces a downstream
// user composes, so examples and applications only import "blastlan".
//
//	cfg := blastlan.Config{Bytes: 64 << 10, Protocol: blastlan.Blast,
//		Strategy: blastlan.GoBackN, RetransTimeout: 200 * time.Millisecond}
//	res, err := blastlan.Simulate(cfg, blastlan.SimOptions{Cost: blastlan.Standalone3Com()})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package blastlan

import (
	"net"
	"time"

	"blastlan/internal/analytic"
	"blastlan/internal/core"
	"blastlan/internal/disk"
	"blastlan/internal/mc"
	"blastlan/internal/params"
	"blastlan/internal/simrun"
	"blastlan/internal/udplan"
	"blastlan/internal/vkernel"
)

// Core protocol types.
type (
	// Config describes one transfer; both sides must agree on it (the
	// paper's pre-allocated-buffer contract).
	Config = core.Config
	// Protocol selects stop-and-wait, sliding window or blast.
	Protocol = core.Protocol
	// Strategy selects the blast retransmission strategy (§3.2).
	Strategy = core.Strategy
	// Env is the substrate interface protocol engines run on.
	Env = core.Env
	// SendResult and RecvResult report the two sides of a transfer.
	SendResult = core.SendResult
	RecvResult = core.RecvResult
)

// Protocol classes (Figure 1 + the double-buffered variant of Figure 3.d).
const (
	StopAndWait   = core.StopAndWait
	SlidingWindow = core.SlidingWindow
	Blast         = core.Blast
	BlastAsync    = core.BlastAsync
)

// Blast retransmission strategies, in the paper's §3.2 order.
const (
	FullNoNak = core.FullNoNak
	FullNak   = core.FullNak
	GoBackN   = core.GoBackN
	Selective = core.Selective
)

// Cost, loss and hostile-network models.
type (
	// CostModel holds the per-packet cost constants (C, Ca, T, Ta, τ).
	CostModel = params.CostModel
	// LossModel describes wire and interface loss processes.
	LossModel = params.LossModel
	// GilbertElliott is the two-state burst-loss chain.
	GilbertElliott = params.GilbertElliott
	// Adversary is the full hostile-network model: loss plus seeded
	// reordering, duplication, bit corruption, jitter and scripted
	// per-packet mangling. One definition runs on the simulator, the V
	// kernel and real UDP endpoints.
	Adversary = params.Adversary
	// Mangle is the adversary's per-packet verdict.
	Mangle = params.Mangle
)

// Hardware presets.
var (
	// Standalone3Com reproduces §2.1's measured constants.
	Standalone3Com = params.Standalone3Com
	// VKernel folds in the §2.2 kernel overhead (Table 3).
	VKernel = params.VKernel
	// ExcelanDMA models the §2.1.3 slow-on-board-copy DMA board.
	ExcelanDMA = params.ExcelanDMA
	// ModernGigabit inverts the copy/wire ratio (ablation).
	ModernGigabit = params.ModernGigabit
	// DoubleBuffered returns a copy of a model with two transmit buffers.
	DoubleBuffered = params.DoubleBuffered
)

// Loss presets.
var (
	// NoLoss is the error-free §2 configuration.
	NoLoss = params.NoLoss
	// TypicalEthernet is the paper's measured ≈1e-5 network loss.
	TypicalEthernet = params.TypicalEthernet
	// FullSpeedInterfaces adds the ≈1e-4 interface drops of §3.
	FullSpeedInterfaces = params.FullSpeedInterfaces
)

// Simulation.
type (
	// SimOptions configures a simulated transfer.
	SimOptions = simrun.Options
	// SimResult bundles both sides of a simulated transfer.
	SimResult = simrun.Result
	// SampleStats aggregates a batch of independent seeded transfers.
	SampleStats = simrun.Stats
	// Scenario is a declarative hostile-network experiment runnable on all
	// three substrates (RunSim, RunVKernel, RunUDP, Sample).
	Scenario = simrun.Scenario
	// ScenarioOutcome is the substrate-independent projection of one
	// scenario run, used by the cross-substrate conformance suite.
	ScenarioOutcome = simrun.Outcome
)

// Simulate runs one complete transfer over the discrete-event simulator and
// returns both sides' results.
func Simulate(cfg Config, opt SimOptions) (SimResult, error) {
	return simrun.Transfer(cfg, opt)
}

// SimulateSample runs n independent transfers (trial i seeded opt.Seed+i)
// fanned across all processors and merges the results; the output is
// bit-identical to a sequential run of the same trials.
func SimulateSample(cfg Config, opt SimOptions, n int) (SampleStats, error) {
	return simrun.Sample(cfg, opt, n)
}

// Analytic closed forms (§2.1.3, §3.1–3.2).
var (
	// TimeStopAndWait, TimeSlidingWindow, TimeBlast and TimeBlastDouble are
	// the error-free elapsed-time formulas.
	TimeStopAndWait = analytic.TimeStopAndWait
	TimeSlidingWin  = analytic.TimeSlidingWindow
	TimeBlast       = analytic.TimeBlast
	TimeBlastDouble = analytic.TimeBlastDouble
	// Utilization is the blast network-utilization expression.
	Utilization = analytic.Utilization
	// ExpectedTimeStopAndWait and ExpectedTimeBlast are §3.1's expected
	// times under loss.
	ExpectedTimeStopAndWait = analytic.ExpectedTimeStopAndWait
	ExpectedTimeBlast       = analytic.ExpectedTimeBlast
	// StdDevFullNoNak and StdDevFullNak are §3.2's deviation models.
	StdDevFullNoNak = analytic.StdDevFullNoNak
	StdDevFullNak   = analytic.StdDevFullNak
)

// Monte Carlo (the paper's §3.2.3 method).
type (
	// MCParams configures a Monte-Carlo estimate.
	MCParams = mc.Params
	// MCEstimate summarises the sampled distribution.
	MCEstimate = mc.Estimate
)

// MonteCarloBlast estimates the elapsed-time distribution of a blast
// transfer under the configured retransmission strategy.
func MonteCarloBlast(p MCParams) (MCEstimate, error) { return mc.Blast(p) }

// MonteCarloStopAndWait estimates the stop-and-wait distribution.
func MonteCarloStopAndWait(p MCParams) (MCEstimate, error) { return mc.StopAndWait(p) }

// V kernel substrate (§2.2).
type (
	// Cluster is a pair of V kernels on one simulated network.
	Cluster = vkernel.Cluster
	// ClusterOptions configures the cluster.
	ClusterOptions = vkernel.Options
	// MoveOptions selects the protocol for a MoveTo/MoveFrom.
	MoveOptions = vkernel.MoveOptions
	// VProcess is a V process: an address space plus access rights.
	VProcess = vkernel.Process
	// VMessage is a fixed 32-byte V IPC message (the Send/Receive/Reply
	// exchange that precedes a MoveTo, §2).
	VMessage = vkernel.Message
)

// NewCluster builds two kernels on a fresh simulated network.
func NewCluster(opt ClusterOptions) (*Cluster, error) { return vkernel.NewCluster(opt) }

// File service and storage (the paper's motivating application).
type (
	// FileServer serves files over IPC + disk + MoveTo.
	FileServer = vkernel.FileServer
	// DiskGeometry models the file server's disk timing.
	DiskGeometry = disk.Geometry
)

// NewFileServer attaches a file server to a kernel with the given disk.
func NewFileServer(k *vkernel.Kernel, geom DiskGeometry) (*FileServer, error) {
	return vkernel.NewFileServer(k, geom)
}

// Disk presets.
var (
	// FujitsuEagle is a canonical 1985 server disk.
	FujitsuEagle = disk.FujitsuEagle
	// ModernNVMe is the ablation counterpart.
	ModernNVMe = disk.ModernNVMe
)

// Real UDP transport.
type (
	// UDPEndpoint adapts a UDP socket to the protocol engines.
	UDPEndpoint = udplan.Endpoint
	// UDPServer answers push and pull requests on a socket.
	UDPServer = udplan.Server
)

// DialUDP opens an endpoint talking to remote ("host:port").
func DialUDP(remote string) (*UDPEndpoint, error) { return udplan.Dial(remote) }

// NewUDPServer wraps an open packet socket in a transfer server.
func NewUDPServer(conn net.PacketConn) *UDPServer { return udplan.NewServer(conn) }

// PushUDP transfers cfg.Payload to the endpoint's peer.
func PushUDP(e *UDPEndpoint, cfg Config) (SendResult, error) { return udplan.Push(e, cfg) }

// PullUDP requests the configured transfer from the peer.
func PullUDP(e *UDPEndpoint, cfg Config) (RecvResult, error) { return udplan.Pull(e, cfg) }

// Striped transfers: one logical pull fanned out across parallel stripe
// sessions, reassembled by offset (set cfg.Controller to a registered
// rate-control policy — "aimd", "bbr", "autotune" — for per-stripe rate
// control; the deprecated cfg.Adaptive maps to "aimd").
type (
	// StripeOptions configures the fan-out of a striped pull.
	StripeOptions = udplan.StripeOptions
	// StripedResult reports a striped pull, with the per-stripe feed.
	StripedResult = udplan.StripedResult
)

// PullUDPStriped requests the logical transfer from the daemon at addr as
// parallel stripe sessions and reassembles the result.
func PullUDPStriped(addr string, cfg Config, opts StripeOptions) (StripedResult, error) {
	return udplan.PullStriped(addr, cfg, opts)
}

// TransferChecksum is the whole-transfer software checksum (§4).
func TransferChecksum(data []byte) uint16 { return core.TransferChecksum(data) }

// DefaultTr returns a sensible retransmission timeout for a transfer of n
// data packets on the given hardware: twice the error-free blast time, the
// scale Figure 5 uses.
func DefaultTr(m CostModel, n int) time.Duration { return 2 * analytic.TimeBlast(m, n) }
